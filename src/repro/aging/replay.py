"""Replaying an aging workload against a simulated file system.

This is Section 3.2 of the paper.  The replayer's one clever trick is
how it forces each file into the cylinder group it occupied on the
source file system without knowing any pathnames:

1. on the empty file system, create one directory per cylinder group —
   the ``dirpref`` rule guarantees they land in distinct groups;
2. for each file in the workload, compute its source cylinder group from
   its source inode number, and create the file in the corresponding
   seed directory — FFS places files in their directory's group, so
   every group sees the same allocate/free sequence it saw on the
   source system.

The replayer samples the aggregate layout score (and utilization) at the
end of every simulated day, producing the curves of Figures 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro import obs
from repro.aging.workload import APPEND, CREATE, Workload
from repro.analysis.layout import optimal_pairs
from repro.analysis.timeline import DailySample, Timeline
from repro.obs import events as obs_events
from repro.errors import FaultInjectionError, OutOfSpaceError, SimulationError
from repro.ffs.filesystem import FileSystem
from repro.obs.trace import Span, Tracer

#: Replay engines: the columnar batch loop is the default; the per-record
#: reference path exists for differential testing and debugging.
ENGINES = ("columnar", "perop")

#: Version tag of the replay engine's observable output format.  Part of
#: the replay cache key: bump it whenever an engine change could alter
#: replay results, so stale cache entries miss instead of being served.
ENGINE_VERSION = "columnar/v1"

#: Workload operations replayed by this process, across all replays.
_ops_replayed = 0


def ops_replayed() -> int:
    """Monotonic count of workload ops replayed in this process.

    The bench suite samples this around each experiment to derive an
    ops/second throughput figure for the aging-bound experiments; cache
    hits replay nothing and therefore don't move it.
    """
    return _ops_replayed

if TYPE_CHECKING:  # imported lazily to keep repro.faults optional at runtime
    from repro.faults.injector import CrashSummary, FaultInjector


@dataclass
class ReplayResult:
    """Outcome of one aging replay."""

    fs: FileSystem
    timeline: Timeline
    ops_applied: int = 0
    creates: int = 0
    deletes: int = 0
    skipped_no_space: int = 0
    bytes_written: int = 0
    #: Map from workload file id to live simulator inode, for experiments
    #: that need to find specific files afterwards (e.g. hot files).
    live_files: Dict[int, int] = field(default_factory=dict)
    #: True when a fault plan's crash point halted the replay early; the
    #: timeline then stops at the crash day and ``fs`` carries whatever
    #: damage the plan inflicted.  Never set on the no-fault path.
    crashed: bool = False
    #: The injector's damage summary when ``crashed`` (else ``None``).
    crash: Optional["CrashSummary"] = None


class AgingReplayer:
    """Replays a workload against one file system.

    The aggregate layout score is maintained *incrementally*: each
    create/append/delete updates per-inode (optimal, countable) pair
    counts, so the end-of-day sample is O(1) instead of a full-system
    rescan — the difference between minutes and seconds at the paper's
    scale.  ``tests/test_aging_replay.py`` checks the incremental score
    against a recomputation.
    """

    def __init__(
        self,
        fs: FileSystem,
        label: str = "aged",
        faults: "Optional[FaultInjector]" = None,
    ) -> None:
        self.fs = fs
        self.label = label
        #: Optional fault injector (:mod:`repro.faults`).  Every call
        #: into it is guarded by an ``is not None`` check so that the
        #: default path executes exactly the same statements as before
        #: fault injection existed.
        self._faults = faults
        # Event-log handle, captured once; None is the disabled path.
        self._e = obs.events_or_none()
        self._dir_for_cg: List[str] = []
        self._pairs: Dict[int, "tuple[int, int]"] = {}  # ino -> (opt, countable)
        self._optimal_total = 0
        self._countable_total = 0
        #: Inodes whose last growth hit ENOSPC part-way: their flushed
        #: frontier sits below the block list, so the realloc policy may
        #: relocate blocks the incremental append delta assumes frozen —
        #: the next update on such an inode rescans it in full.
        self._dirty_inos: Set[int] = set()
        #: Blocks walked by pair accounting, for regression budgets: the
        #: incremental path keeps this linear in blocks *written* where a
        #: full per-append rescan would be quadratic in file size.
        self.pair_scan_blocks = 0
        #: Regular files live when replay() started, so day samples can
        #: report the live-file count without walking the inode table.
        self._initial_files = 0
        self._frags_per_cg = fs.params.blocks_per_cg * fs.params.frags_per_block
        self._occupancy_buf: List[float] = []
        self._seed_directories()

    def _seed_directories(self) -> None:
        """Create one directory per cylinder group (Section 3.2)."""
        ncg = self.fs.params.ncg
        for i in range(ncg):
            name = f"cg{i:03d}"
            directory = self.fs.make_directory(name)
            self._dir_for_cg.append(directory.name)
        groups = {self.fs.directories[n].cg for n in self._dir_for_cg}
        if len(groups) != ncg:
            raise SimulationError(
                "dirpref failed to spread the seed directories across "
                f"all {ncg} cylinder groups (got {len(groups)})"
            )
        # Index directories by the group they actually landed in.
        by_cg = {self.fs.directories[n].cg: n for n in self._dir_for_cg}
        self._dir_for_cg = [by_cg[i] for i in range(ncg)]

    def target_directory(self, src_ino: int) -> str:
        """Seed directory for a file with source inode ``src_ino``.

        The source and replay file systems have the same geometry in the
        paper; if a workload from a different-sized source is replayed,
        groups are folded modulo the replay group count.
        """
        src_cg = src_ino // self.fs.params.inodes_per_cg
        return self._dir_for_cg[src_cg % self.fs.params.ncg]

    def replay(
        self,
        workload: Workload,
        sample_days: bool = True,
        engine: str = "columnar",
    ) -> ReplayResult:
        """Apply every operation; returns the result with daily samples.

        ``engine`` selects the loop implementation: ``"columnar"`` (the
        default) iterates the workload's structure-of-arrays columns in
        precomputed day slices; ``"perop"`` is the per-record reference
        path.  Both produce identical results — the differential suite
        in ``tests/test_aging_columnar.py`` pins that.

        With telemetry enabled each simulated day becomes one span
        (simulated clock in days, attrs carrying that day's op/ENOSPC
        tallies) and the run's totals land in process-wide counters.
        """
        global _ops_replayed
        _ops_replayed += len(workload)
        if engine == "columnar":
            return self._replay_columnar(workload, sample_days)
        if engine == "perop":
            return self._replay_perop(workload, sample_days)
        raise ValueError(f"unknown replay engine {engine!r}; pick from {ENGINES}")

    def _replay_columnar(
        self, workload: Workload, sample_days: bool
    ) -> ReplayResult:
        """The batched day-slice loop over the workload's columns."""
        cols = workload.columns()
        result = ReplayResult(fs=self.fs, timeline=Timeline(label=self.label))
        self._initial_files = len(self.fs.files())
        tr = obs.tracer_or_none()
        day_span = (
            tr.begin("replay.day", sim=0, label=self.label, day=0)
            if tr is not None
            else None
        )
        day_start_ops = day_start_skips = 0
        current_day = 0
        fault_day = 0
        # Hot-loop locals: every attribute below is read once per op.
        fs = self.fs
        faults = self._faults
        ops = cols.op
        times = cols.time
        file_ids = cols.file_id
        sizes = cols.size
        src_inos = cols.src_ino
        live = result.live_files
        try:
            for day, (lo, hi) in enumerate(cols.day_slices):
                if lo == hi:
                    continue  # empty day: sampled by a later catch-up
                if faults is not None and day != fault_day:
                    fault_day = day
                    faults.begin_day(day)
                while sample_days and day > current_day:
                    self._sample(result, current_day)
                    if tr is not None:
                        tr.end(
                            day_span,
                            sim=current_day + 1,
                            ops=result.ops_applied - day_start_ops,
                            enospc=result.skipped_no_space - day_start_skips,
                            layout_score=round(self.current_layout_score(), 4),
                        )
                        day_start_ops = result.ops_applied
                        day_start_skips = result.skipped_no_space
                        day_span = tr.begin(
                            "replay.day",
                            sim=current_day + 1,
                            label=self.label,
                            day=current_day + 1,
                        )
                    current_day += 1
                for i in range(lo, hi):
                    code = ops[i]
                    if code == 0:  # create
                        directory = self.target_directory(src_inos[i])
                        if faults is not None:
                            faults.before_op(fs, "create", None)
                        size = sizes[i]
                        try:
                            ino = fs.create_file(directory, size, when=times[i])
                        except OutOfSpaceError:
                            result.skipped_no_space += 1
                            continue
                        self._track_pairs(ino)
                        live[file_ids[i]] = ino
                        result.creates += 1
                        result.bytes_written += size
                        op_kind = "create"
                    elif code == 1:  # append
                        ino = live.get(file_ids[i])
                        if ino is None:
                            continue  # its create was skipped for space
                        if faults is not None:
                            faults.before_op(fs, "append", ino)
                        size = sizes[i]
                        try:
                            self._append_tracked(ino, size, times[i])
                        except OutOfSpaceError:
                            result.skipped_no_space += 1
                            continue
                        result.bytes_written += size
                        op_kind = "append"
                    else:  # delete
                        ino = live.pop(file_ids[i], None)
                        if ino is None:
                            continue  # its create was skipped for space
                        if faults is not None:
                            faults.before_op(fs, "delete", ino)
                        fs.delete_file(ino, when=times[i])
                        self._untrack_pairs(ino)
                        result.deletes += 1
                        op_kind = "delete"
                    result.ops_applied += 1
                    if faults is not None:
                        # ENOSPC-skipped ops never reach here: they are
                        # not buffered and cannot be crash candidates.
                        faults.after_op(fs, op_kind, ino)
        except FaultInjectionError as exc:
            return self._crash_result(
                result, exc, tr, day_span, current_day,
                day_start_ops, day_start_skips,
            )
        return self._finish_replay(
            result, sample_days, tr, day_span, current_day,
            day_start_ops, day_start_skips,
        )

    def _replay_perop(self, workload: Workload, sample_days: bool) -> ReplayResult:
        """The per-record reference loop (identical results, no batching)."""
        result = ReplayResult(fs=self.fs, timeline=Timeline(label=self.label))
        self._initial_files = len(self.fs.files())
        tr = obs.tracer_or_none()
        day_span = (
            tr.begin("replay.day", sim=0, label=self.label, day=0)
            if tr is not None
            else None
        )
        day_start_ops = day_start_skips = 0
        current_day = 0
        fault_day = 0
        try:
            for record in workload:
                day = int(record.time)
                if self._faults is not None and day != fault_day:
                    fault_day = day
                    self._faults.begin_day(day)
                while sample_days and day > current_day:
                    self._sample(result, current_day)
                    if tr is not None:
                        tr.end(
                            day_span,
                            sim=current_day + 1,
                            ops=result.ops_applied - day_start_ops,
                            enospc=result.skipped_no_space - day_start_skips,
                            layout_score=round(self.current_layout_score(), 4),
                        )
                        day_start_ops = result.ops_applied
                        day_start_skips = result.skipped_no_space
                        day_span = tr.begin(
                            "replay.day",
                            sim=current_day + 1,
                            label=self.label,
                            day=current_day + 1,
                        )
                    current_day += 1
                if record.op == CREATE:
                    directory = self.target_directory(record.src_ino)
                    if self._faults is not None:
                        self._faults.before_op(self.fs, "create", None)
                    try:
                        ino = self.fs.create_file(
                            directory, record.size, when=record.time
                        )
                    except OutOfSpaceError:
                        result.skipped_no_space += 1
                        continue
                    self._track_pairs(ino)
                    result.live_files[record.file_id] = ino
                    result.creates += 1
                    result.bytes_written += record.size
                    op_kind = "create"
                elif record.op == APPEND:
                    ino = result.live_files.get(record.file_id)
                    if ino is None:
                        continue  # its create was skipped for space
                    if self._faults is not None:
                        self._faults.before_op(self.fs, "append", ino)
                    try:
                        self._append_tracked(ino, record.size, record.time)
                    except OutOfSpaceError:
                        result.skipped_no_space += 1
                        continue
                    result.bytes_written += record.size
                    op_kind = "append"
                else:
                    ino = result.live_files.pop(record.file_id, None)
                    if ino is None:
                        continue  # its create was skipped for space
                    if self._faults is not None:
                        self._faults.before_op(self.fs, "delete", ino)
                    self.fs.delete_file(ino, when=record.time)
                    self._untrack_pairs(ino)
                    result.deletes += 1
                    op_kind = "delete"
                result.ops_applied += 1
                if self._faults is not None:
                    # ENOSPC-skipped ops never reach here: they are not
                    # buffered and cannot be crash candidates.
                    self._faults.after_op(self.fs, op_kind, ino)
        except FaultInjectionError as exc:
            return self._crash_result(
                result, exc, tr, day_span, current_day,
                day_start_ops, day_start_skips,
            )
        return self._finish_replay(
            result, sample_days, tr, day_span, current_day,
            day_start_ops, day_start_skips,
        )

    def _crash_result(
        self,
        result: ReplayResult,
        exc: FaultInjectionError,
        tr: "Optional[Tracer]",
        day_span: "Optional[Span]",
        current_day: int,
        day_start_ops: int,
        day_start_skips: int,
    ) -> ReplayResult:
        # The plan's crash point fired: return the partial result.
        # The timeline deliberately gets no sample for the crash day
        # (the machine went down before the end-of-day snapshot).
        result.crashed = True
        result.crash = getattr(exc, "summary", None)
        if tr is not None and day_span is not None:
            tr.end(
                day_span,
                sim=current_day + 1,
                ops=result.ops_applied - day_start_ops,
                enospc=result.skipped_no_space - day_start_skips,
                layout_score=round(self.current_layout_score(), 4),
                crashed=True,
            )
        return result

    def _finish_replay(
        self,
        result: ReplayResult,
        sample_days: bool,
        tr: "Optional[Tracer]",
        day_span: "Optional[Span]",
        current_day: int,
        day_start_ops: int,
        day_start_skips: int,
    ) -> ReplayResult:
        if sample_days:
            self._sample(result, current_day)
        if tr is not None and day_span is not None:
            tr.end(
                day_span,
                sim=current_day + 1,
                ops=result.ops_applied - day_start_ops,
                enospc=result.skipped_no_space - day_start_skips,
                layout_score=round(self.current_layout_score(), 4),
            )
        m = obs.metrics_or_none()
        if m is not None:
            m.counter("replay.ops").inc(result.ops_applied)
            m.counter("replay.creates").inc(result.creates)
            m.counter("replay.deletes").inc(result.deletes)
            m.counter("replay.enospc_skips").inc(result.skipped_no_space)
            m.counter("replay.bytes_written").inc(result.bytes_written)
            m.gauge(f"replay.{self.label}.final_score").set(
                self.current_layout_score()
            )
        return result

    def _sample(self, result: ReplayResult, day: int) -> None:
        # The replayer's own live map tracks every create/delete it
        # applies, so the live-file count is bookkeeping — not a walk
        # over the whole inode table every sampled day.
        sample = DailySample(
            day=day,
            layout_score=self.current_layout_score(),
            utilization=self.fs.utilization(),
            live_files=self._initial_files + len(result.live_files),
            ops_applied=result.ops_applied,
        )
        result.timeline.add(sample)
        if self._e is not None:
            # One typed event per simulated day: exactly the timeline's
            # sample (same objects, so the scores match to the bit) plus
            # the free-space and per-CG occupancy summary the timeline
            # does not carry.
            self._e.emit(
                obs_events.DAY_SAMPLE,
                label=self.label,
                day=sample.day,
                layout_score=sample.layout_score,
                utilization=sample.utilization,
                live_files=sample.live_files,
                ops_applied=sample.ops_applied,
                **self._fs_health(),
            )

    def _fs_health(self) -> Dict[str, object]:
        """Free-space fragmentation + per-CG occupancy for day samples.

        Only computed when the event log is active: it walks every
        group's free-run map, which would be wasted work on the
        default path.
        """
        from repro.analysis.freespace import free_space_stats

        stats = free_space_stats(self.fs)
        frags_per_cg = self._frags_per_cg
        per_cg = [
            round(1.0 - cg.free_frags / frags_per_cg, 4)
            for cg in self.fs.sb.cgs
        ]
        # Sort into one reusable buffer: the per-day vectors above must
        # be fresh lists (they are stored in the emitted event), but the
        # decile scratch space does not escape this method.
        occupancy = self._occupancy_buf
        occupancy[:] = per_cg
        occupancy.sort()
        n = len(occupancy)
        deciles = [
            round(occupancy[min(n - 1, round(i * (n - 1) / 10))], 4)
            for i in range(11)
        ]
        # Per-CG free-space fragmentation: how little of a group's free
        # space its largest run covers (0 = one contiguous run, →1 =
        # shattered).  A fully occupied group has nothing to fragment.
        frag = []
        for cg in self.fs.sb.cgs:
            free = cg.free_blocks
            if free == 0:
                frag.append(0.0)
                continue
            frag.append(round(1.0 - cg.max_free_run() / free, 4))
        return {
            "free_runs": stats.n_runs,
            "largest_free_run": stats.largest_run,
            "clusterable_fraction": round(stats.clusterable_fraction, 4),
            "cg_occupancy_deciles": deciles,
            # Unsorted per-group vectors, in CG order: the columns of
            # the report's occupancy/fragmentation heatmaps.
            "cg_occupancy": per_cg,
            "cg_frag": frag,
        }

    # ------------------------------------------------------------------
    # Incremental layout accounting
    # ------------------------------------------------------------------

    def current_layout_score(self) -> float:
        """Aggregate layout score from the incremental counters."""
        if self._countable_total == 0:
            return 1.0
        return self._optimal_total / self._countable_total

    def _track_pairs(self, ino: int) -> None:
        self._untrack_pairs(ino)
        inode = self.fs.inode(ino)
        block_list = inode.data_block_list()
        optimal, countable = optimal_pairs(block_list)
        self.pair_scan_blocks += len(block_list)
        self._pairs[ino] = (optimal, countable)
        self._optimal_total += optimal
        self._countable_total += countable

    def _untrack_pairs(self, ino: int) -> None:
        optimal, countable = self._pairs.pop(ino, (0, 0))
        self._optimal_total -= optimal
        self._countable_total -= countable

    def _append_tracked(self, ino: int, nbytes: int, when: float) -> None:
        """Append to ``ino`` and delta-update its pair counts.

        On a clean inode the flushed frontier equals the block-list
        length, so the realloc policy can only relocate blocks at or
        beyond the pre-append last full block — every pair below that
        position is frozen and the delta is computed from the short
        changed suffix alone, keeping pair accounting linear in blocks
        *written* instead of quadratic in file growth.  An ENOSPC
        partial growth leaves the frontier behind the block list (a
        later window may relocate earlier blocks), so the inode goes in
        the dirty set and its next update rescans in full.
        """
        inode = self.fs.inode(ino)
        dirty = ino in self._dirty_inos
        old_blocks = inode.blocks
        old_nb = len(old_blocks)
        old_last = old_blocks[-1] if old_nb else -1
        old_tail = inode.tail
        try:
            self.fs.append(ino, nbytes, when=when)
        except OutOfSpaceError:
            self._dirty_inos.add(ino)
            self._track_pairs(ino)  # partial growth still counts
            raise
        if dirty:
            self._dirty_inos.discard(ino)
            self._track_pairs(ino)
            return
        # Old pairs at or beyond the cut position: at most the one pair
        # between the last full block and the fragment tail.
        cut = old_nb - 1 if old_nb else 0
        old_opt = old_cnt = 0
        if old_nb and old_tail is not None:
            old_cnt = 1
            if old_tail[0] == old_last + 1:
                old_opt = 1
        suffix = inode.blocks[cut:]
        if inode.tail is not None:
            suffix.append(inode.tail[0])
        new_opt, new_cnt = optimal_pairs(suffix)
        self.pair_scan_blocks += len(suffix)
        prev_opt, prev_cnt = self._pairs.get(ino, (0, 0))
        self._pairs[ino] = (
            prev_opt - old_opt + new_opt,
            prev_cnt - old_cnt + new_cnt,
        )
        self._optimal_total += new_opt - old_opt
        self._countable_total += new_cnt - old_cnt


def age_file_system(
    workload: Workload,
    params: Optional[FSParams] = None,
    policy: str = "ffs",
    label: Optional[str] = None,
    faults: "Optional[FaultInjector]" = None,
    engine: str = "columnar",
) -> ReplayResult:
    """Convenience: build a fresh file system and age it with ``workload``."""
    fs = FileSystem(params=params, policy=policy)
    replayer = AgingReplayer(
        fs, label=label if label is not None else policy, faults=faults
    )
    return replayer.replay(workload, engine=engine)

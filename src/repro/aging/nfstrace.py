"""Synthetic NFS trace days: the short-lived-file churn source.

The paper fills in the create/delete pairs invisible to nightly
snapshots using multi-day NFS traces from Network Appliance file servers
([Hitz94], previously used in [Blackwell95]): for each snapshot day it
samples one trace day, places the trace's short-lived files in the
directories that changed the most between snapshots, and time-shifts
each directory's operations to coincide with the peak activity in its
target directory.

The traces themselves are proprietary, so :class:`SyntheticNFSTrace`
generates days with the same relevant structure: a Poisson number of
same-day create/delete pairs, Zipf-weighted across trace directories,
clustered in time per directory, with sub-day exponential lifetimes and
small log-normal sizes.  :func:`integrate_short_lived` then performs the
paper's placement/time-shifting step verbatim against the reconstructed
per-day operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.aging.diff import directory_activity
from repro.aging.workload import CREATE, DELETE, WorkloadRecord
from repro import rng as rng_module
from repro.rng import SeededStreams
from repro.units import KB


@dataclass(frozen=True)
class TraceFile:
    """One short-lived file from a (synthetic) NFS trace day."""

    #: Directory identifier within the trace (not a source-FS directory).
    trace_dir: int
    #: Create time as a fraction of the trace day.
    create_frac: float
    #: Delete time as a fraction of the trace day (> create_frac).
    delete_frac: float
    size: int


class SyntheticNFSTrace:
    """A bank of synthetic trace days to sample from."""

    def __init__(
        self,
        seed: int = 0,
        n_days: int = 14,
        pairs_per_day: float = 400.0,
        n_trace_dirs: int = 20,
        size_median: float = 4 * KB,
        size_sigma: float = 1.6,
        mean_lifetime_frac: float = 0.08,
        max_size: int = 1024 * KB,
    ):
        if n_days < 1:
            raise ValueError("need at least one trace day")
        self.n_days = n_days
        streams = SeededStreams(seed)
        rng = streams.get("nfs-trace")
        dir_peaks = [0.3 + 0.5 * rng.random() for _ in range(n_trace_dirs)]
        dir_weights = [1.0 / (rank + 1) for rank in range(n_trace_dirs)]
        total_weight = sum(dir_weights)
        self.days: List[List[TraceFile]] = []
        for _day in range(n_days):
            n = self._poisson(rng, pairs_per_day)
            files: List[TraceFile] = []
            for _ in range(n):
                r = rng.random() * total_weight
                trace_dir = 0
                acc = 0.0
                for idx, w in enumerate(dir_weights):
                    acc += w
                    if r <= acc:
                        trace_dir = idx
                        break
                create = min(0.95, max(0.01, rng.gauss(dir_peaks[trace_dir], 0.08)))
                lifetime = max(1e-4, rng.expovariate(1.0 / mean_lifetime_frac))
                delete = min(0.9999, create + lifetime)
                size = int(size_median * math.exp(rng.gauss(0.0, size_sigma)))
                size = max(256, min(max_size, size))
                files.append(
                    TraceFile(
                        trace_dir=trace_dir, create_frac=create,
                        delete_frac=delete, size=size,
                    )
                )
            # Sort by directory then time, like the paper's trace log
            # ("sorted by the day they were created and the directory in
            # which they were created").
            files.sort(key=lambda f: (f.trace_dir, f.create_frac))
            self.days.append(files)

    @staticmethod
    def _poisson(rng: rng_module.Random, lam: float) -> int:
        if lam <= 0:
            return 0
        if lam > 500:
            return max(0, int(rng.gauss(lam, math.sqrt(lam))))
        level = math.exp(-lam)
        k, product = 0, rng.random()
        while product > level:
            k += 1
            product *= rng.random()
        return k


def integrate_short_lived(
    per_day_ops: Sequence[List[WorkloadRecord]],
    trace: SyntheticNFSTrace,
    seed: int = 0,
    first_file_id: int = 1 << 40,
) -> List[List[WorkloadRecord]]:
    """Fold short-lived trace files into each reconstructed day.

    For each day: sample one trace day, group its files by trace
    directory (busiest first), map those groups onto the source
    directories with the most changes that day, and shift each group's
    times so its mean create time lands on the target directory's mean
    activity time.  Short-lived file ids start at ``first_file_id`` so
    they can never collide with reconstructed ids.
    """
    streams = SeededStreams(seed)
    rng = streams.get("trace-sampling")
    next_fid = first_file_id
    out: List[List[WorkloadRecord]] = []
    for day_index, day_ops in enumerate(per_day_ops):
        merged = list(day_ops)
        ranked = directory_activity(day_ops)
        if ranked:
            trace_day = trace.days[rng.randrange(trace.n_days)]
            groups: Dict[int, List[TraceFile]] = {}
            for tf in trace_day:
                groups.setdefault(tf.trace_dir, []).append(tf)
            # Busiest trace directories map onto busiest source dirs.
            ordered_groups = sorted(
                groups.values(), key=lambda g: -len(g)
            )
            for rank, group in enumerate(ordered_groups):
                target_dir, _count, peak_time = ranked[rank % len(ranked)]
                target_ino = _representative_ino(day_ops, target_dir)
                group_mean = sum(tf.create_frac for tf in group) / len(group)
                # Anchor to the day the reconstructed ops actually carry
                # (normally equal to the list index, but derived from the
                # data so partial day lists behave sensibly too).
                base_day = float(int(day_ops[0].time)) if day_ops else float(day_index)
                shift = (peak_time - base_day) - group_mean
                for tf in group:
                    t_create = _clamp(base_day + tf.create_frac + shift, base_day)
                    t_delete = _clamp(
                        base_day + tf.delete_frac + shift, base_day
                    )
                    if t_delete <= t_create:
                        t_delete = min(base_day + 0.9999, t_create + 1e-4)
                    fid = next_fid
                    next_fid += 1
                    merged.append(
                        WorkloadRecord(
                            time=t_create, op=CREATE, file_id=fid,
                            size=tf.size, src_ino=target_ino,
                            directory=target_dir,
                        )
                    )
                    merged.append(
                        WorkloadRecord(
                            time=t_delete, op=DELETE, file_id=fid, size=0,
                            src_ino=target_ino, directory=target_dir,
                        )
                    )
        out.append(merged)
    return out


def _representative_ino(
    day_ops: Sequence[WorkloadRecord], directory: str
) -> int:
    """A source inode belonging to ``directory``, for cg steering."""
    for record in day_ops:
        if record.directory == directory:
            return record.src_ino
    return 0


def _clamp(when: float, day: float) -> float:
    return min(day + 0.9999, max(day + 1e-6, when))

"""Workload records: the unit of file-system aging.

A workload is an ordered list of create/delete operations.  Each record
carries the *source* inode number of the file, because that is how the
paper's replayer decides which cylinder group the file belongs in
(Section 3.2): "we used each file's inode number to compute the cylinder
group to which it was allocated on the original file system".

Workloads serialize to a simple line-oriented text format so they can be
generated once and replayed from the CLI, mirroring the paper's
downloadable workload file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, TextIO

from repro.errors import WorkloadError

CREATE = "create"
APPEND = "append"
DELETE = "delete"


@dataclass(frozen=True)
class WorkloadRecord:
    """One file operation in an aging workload.

    Large files on a live file system are not written in one atomic
    burst: the NFS clients behind the paper's traces wrote them in many
    requests interleaved with other activity, which is a major source of
    fragmentation under the original allocator.  The ground-truth
    workload therefore represents a large file as one ``create`` (first
    chunk) followed by ``append`` records; a reconstruction from nightly
    snapshots cannot see that structure and emits a single full-size
    ``create`` — one of the approximations responsible for the gap
    between the "Real" and "Simulated" curves of Figure 1.
    """

    #: Operation time in fractional days from the start of the workload.
    time: float
    #: ``"create"``, ``"append"``, or ``"delete"``.
    op: str
    #: Identity of the file across its lifetime (create/delete pair).
    file_id: int
    #: Bytes written (creates/appends; 0 for deletes).
    size: int
    #: Inode number the file had on the source file system.
    src_ino: int
    #: Directory name on the source file system (used when folding
    #: short-lived trace files into busy directories).
    directory: str

    def __post_init__(self) -> None:
        if self.op not in (CREATE, APPEND, DELETE):
            raise WorkloadError(f"unknown op {self.op!r}")
        if self.op in (CREATE, APPEND) and self.size < 0:
            raise WorkloadError(f"{self.op} with negative size {self.size}")
        if self.op == APPEND and self.size == 0:
            raise WorkloadError("append of zero bytes")
        if self.time < 0:
            raise WorkloadError(f"negative time {self.time}")

    def to_line(self) -> str:
        """Serialize to one text line."""
        return (
            f"{self.time:.6f} {self.op} {self.file_id} {self.size} "
            f"{self.src_ino} {self.directory}"
        )

    @classmethod
    def from_line(cls, line: str) -> "WorkloadRecord":
        """Parse a record from :meth:`to_line` output."""
        parts = line.split()
        if len(parts) != 6:
            raise WorkloadError(f"malformed workload line: {line!r}")
        return cls(
            time=float(parts[0]),
            op=parts[1],
            file_id=int(parts[2]),
            size=int(parts[3]),
            src_ino=int(parts[4]),
            directory=parts[5],
        )


class Workload:
    """An ordered aging workload with integrity checks."""

    _OP_RANK = {CREATE: 0, APPEND: 1, DELETE: 2}

    def __init__(self, records: Iterable[WorkloadRecord] = ()):
        self.records: List[WorkloadRecord] = sorted(
            records, key=lambda r: (r.time, r.file_id, Workload._OP_RANK[r.op])
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WorkloadRecord]:
        return iter(self.records)

    def days(self) -> int:
        """Number of whole days the workload spans."""
        if not self.records:
            return 0
        return int(self.records[-1].time) + 1

    def bytes_written(self) -> int:
        """Total bytes written by creates and appends (paper: 48.6 GB)."""
        return sum(r.size for r in self.records if r.op in (CREATE, APPEND))

    def validate(self) -> None:
        """Check orderings and create/append/delete pairing.

        Appends and deletes must refer to a previously created (and not
        yet deleted) file id; no file id is created twice while live.
        """
        live: set = set()
        last_time = 0.0
        for record in self.records:
            if record.time < last_time:
                raise WorkloadError("records are not time-ordered")
            last_time = record.time
            if record.op == CREATE:
                if record.file_id in live:
                    raise WorkloadError(
                        f"file {record.file_id} created while already live"
                    )
                live.add(record.file_id)
            elif record.op == APPEND:
                if record.file_id not in live:
                    raise WorkloadError(
                        f"file {record.file_id} appended while not live"
                    )
            else:
                if record.file_id not in live:
                    raise WorkloadError(
                        f"file {record.file_id} deleted while not live"
                    )
                live.remove(record.file_id)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def dump(self, fp: TextIO) -> None:
        """Write the workload in text form."""
        for record in self.records:
            fp.write(record.to_line() + "\n")

    @classmethod
    def load(cls, fp: TextIO) -> "Workload":
        """Read a workload written by :meth:`dump`."""
        records = [
            WorkloadRecord.from_line(line)
            for line in fp
            if line.strip() and not line.startswith("#")
        ]
        return cls(records)

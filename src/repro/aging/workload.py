"""Workload records: the unit of file-system aging.

A workload is an ordered list of create/delete operations.  Each record
carries the *source* inode number of the file, because that is how the
paper's replayer decides which cylinder group the file belongs in
(Section 3.2): "we used each file's inode number to compute the cylinder
group to which it was allocated on the original file system".

Workloads serialize to a simple line-oriented text format so they can be
generated once and replayed from the CLI, mirroring the paper's
downloadable workload file.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.errors import WorkloadError

CREATE = "create"
APPEND = "append"
DELETE = "delete"

#: Byte codes of the columnar op column, in ``_OP_RANK`` order.
OP_CODES = {CREATE: 0, APPEND: 1, DELETE: 2}

#: Op names indexed by byte code (the inverse of ``OP_CODES``).
_OP_NAMES = (CREATE, APPEND, DELETE)

#: Primary sort key of a workload; ties fall back to op rank.
_TIME_FILE_KEY = attrgetter("time", "file_id")


@dataclass(frozen=True)
class WorkloadRecord:
    """One file operation in an aging workload.

    Large files on a live file system are not written in one atomic
    burst: the NFS clients behind the paper's traces wrote them in many
    requests interleaved with other activity, which is a major source of
    fragmentation under the original allocator.  The ground-truth
    workload therefore represents a large file as one ``create`` (first
    chunk) followed by ``append`` records; a reconstruction from nightly
    snapshots cannot see that structure and emits a single full-size
    ``create`` — one of the approximations responsible for the gap
    between the "Real" and "Simulated" curves of Figure 1.
    """

    #: Operation time in fractional days from the start of the workload.
    time: float
    #: ``"create"``, ``"append"``, or ``"delete"``.
    op: str
    #: Identity of the file across its lifetime (create/delete pair).
    file_id: int
    #: Bytes written (creates/appends; 0 for deletes).
    size: int
    #: Inode number the file had on the source file system.
    src_ino: int
    #: Directory name on the source file system (used when folding
    #: short-lived trace files into busy directories).
    directory: str

    def __post_init__(self) -> None:
        if self.op not in (CREATE, APPEND, DELETE):
            raise WorkloadError(f"unknown op {self.op!r}")
        if self.op in (CREATE, APPEND) and self.size < 0:
            raise WorkloadError(f"{self.op} with negative size {self.size}")
        if self.op == APPEND and self.size == 0:
            raise WorkloadError("append of zero bytes")
        if self.time < 0:
            raise WorkloadError(f"negative time {self.time}")

    def to_line(self) -> str:
        """Serialize to one text line."""
        return (
            f"{self.time:.6f} {self.op} {self.file_id} {self.size} "
            f"{self.src_ino} {self.directory}"
        )

    @classmethod
    def from_line(cls, line: str) -> "WorkloadRecord":
        """Parse a record from :meth:`to_line` output."""
        parts = line.split()
        if len(parts) != 6:
            raise WorkloadError(f"malformed workload line: {line!r}")
        return cls(
            time=float(parts[0]),
            op=parts[1],
            file_id=int(parts[2]),
            size=int(parts[3]),
            src_ino=int(parts[4]),
            directory=parts[5],
        )


@dataclass(frozen=True)
class WorkloadColumns:
    """Structure-of-arrays view of a workload.

    Parallel columns hold one op per index — a byte code (``OP_CODES``),
    the fractional-day time, the file id, the byte count, and the source
    inode — so the replay hot loop indexes flat arrays instead of
    touching a ``WorkloadRecord`` object per op.  ``day_slices`` is the
    precomputed day index: entry ``d`` is the half-open record range
    whose ``int(time)`` equals ``d``, so the day loop iterates contiguous
    slices instead of testing the day of every record.
    """

    op: bytes
    time: "array[float]"
    file_id: "array[int]"
    size: "array[int]"
    src_ino: "array[int]"
    #: Dictionary-encoded source directory: ``dir_table[dir_id[i]]`` is
    #: record ``i``'s directory.  Keeps the columns lossless (so records
    #: can be rebuilt exactly) without a per-record string.
    dir_id: "array[int]"
    dir_table: Tuple[str, ...]
    day_slices: Tuple[Tuple[int, int], ...]

    @classmethod
    def from_records(cls, records: Sequence[WorkloadRecord]) -> "WorkloadColumns":
        """Build the columns from time-ordered records."""
        n = len(records)
        slices: List[Tuple[int, int]] = []
        start = 0
        current = 0
        times = array("d", (r.time for r in records))
        for i in range(n):
            day = int(times[i])
            while current < day:
                slices.append((start, i))
                start = i
                current += 1
        if n:
            slices.append((start, n))
        dir_index: Dict[str, int] = {}
        dir_ids = array("l")
        for r in records:
            dir_ids.append(dir_index.setdefault(r.directory, len(dir_index)))
        return cls(
            op=bytes(OP_CODES[r.op] for r in records),
            time=times,
            file_id=array("q", (r.file_id for r in records)),
            size=array("q", (r.size for r in records)),
            src_ino=array("q", (r.src_ino for r in records)),
            dir_id=dir_ids,
            dir_table=tuple(dir_index),
            day_slices=tuple(slices),
        )

    def to_records(self) -> List[WorkloadRecord]:
        """Rebuild the exact record list the columns were built from."""
        ops = _OP_NAMES
        dirs = self.dir_table
        return [
            WorkloadRecord(
                time=t, op=ops[o], file_id=f, size=s, src_ino=i,
                directory=dirs[d],
            )
            for o, t, f, s, i, d in zip(
                self.op, self.time, self.file_id, self.size,
                self.src_ino, self.dir_id,
            )
        ]


class Workload:
    """An ordered aging workload with integrity checks."""

    _OP_RANK = {CREATE: 0, APPEND: 1, DELETE: 2}

    def __init__(self, records: Iterable[WorkloadRecord] = ()):
        # Sort on the cheap C-level key first; the op rank only matters
        # for records tying on (time, file_id), which real workloads
        # essentially never produce.  A single verification pass promotes
        # to the full key iff a tie is actually ordered wrong (sorting
        # the already-sorted list is near-linear).
        rank = Workload._OP_RANK
        out = sorted(records, key=_TIME_FILE_KEY)
        prev = None
        for rec in out:
            if (
                prev is not None
                and prev.time == rec.time
                and prev.file_id == rec.file_id
                and rank[prev.op] > rank[rec.op]
            ):
                out.sort(key=lambda r: (r.time, r.file_id, rank[r.op]))
                break
            prev = rec
        self._records: Optional[List[WorkloadRecord]] = out
        self._columns: Optional[WorkloadColumns] = None

    @property
    def records(self) -> List[WorkloadRecord]:
        """The time-ordered record list (rebuilt from columns if lazy).

        A workload that crossed a process boundary arrives as columns
        only; the record objects are materialized on first access, which
        the columnar replay path never needs.
        """
        if self._records is None:
            columns = self._columns
            if columns is None:
                raise WorkloadError(
                    "workload carries neither records nor columns"
                )
            self._records = columns.to_records()
        return self._records

    def __getstate__(self) -> Dict[str, object]:
        # Ship the compact columnar arrays, not 10^5 record objects —
        # parallel workers receive workloads pickled, and the columnar
        # replay path never touches the records.
        return {"columns": self.columns()}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._columns = state["columns"]  # type: ignore[assignment]
        self._records = None

    def columns(self) -> WorkloadColumns:
        """The columnar view of this workload (built once, memoized).

        Generators and trace loaders call this right after building a
        workload so replays — including ones in worker processes that
        receive the workload pickled — never pay the conversion in the
        timed path.
        """
        if self._columns is None:
            self._columns = WorkloadColumns.from_records(self.records)
        return self._columns

    def __len__(self) -> int:
        if self._records is not None:
            return len(self._records)
        return len(self.columns().op)

    def __iter__(self) -> Iterator[WorkloadRecord]:
        return iter(self.records)

    def days(self) -> int:
        """Number of whole days the workload spans."""
        if not self.records:
            return 0
        return int(self.records[-1].time) + 1

    def bytes_written(self) -> int:
        """Total bytes written by creates and appends (paper: 48.6 GB)."""
        return sum(r.size for r in self.records if r.op in (CREATE, APPEND))

    def validate(self) -> None:
        """Check orderings and create/append/delete pairing.

        Appends and deletes must refer to a previously created (and not
        yet deleted) file id; no file id is created twice while live.
        """
        live: set = set()
        last_time = 0.0
        for record in self.records:
            if record.time < last_time:
                raise WorkloadError("records are not time-ordered")
            last_time = record.time
            if record.op == CREATE:
                if record.file_id in live:
                    raise WorkloadError(
                        f"file {record.file_id} created while already live"
                    )
                live.add(record.file_id)
            elif record.op == APPEND:
                if record.file_id not in live:
                    raise WorkloadError(
                        f"file {record.file_id} appended while not live"
                    )
            else:
                if record.file_id not in live:
                    raise WorkloadError(
                        f"file {record.file_id} deleted while not live"
                    )
                live.remove(record.file_id)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def dump(self, fp: TextIO) -> None:
        """Write the workload in text form."""
        for record in self.records:
            fp.write(record.to_line() + "\n")

    @classmethod
    def load(cls, fp: TextIO) -> "Workload":
        """Read a workload written by :meth:`dump`."""
        records = [
            WorkloadRecord.from_line(line)
            for line in fp
            if line.strip() and not line.startswith("#")
        ]
        workload = cls(records)
        workload.columns()  # materialize outside the replay hot path
        return workload

"""Aging-workload profiles for different usage patterns (Section 6).

The paper's future work proposes "a variety of different aging workloads
representative of different file system usage patterns, such as news,
database, and personal computing workloads".  Each profile below is an
:class:`~repro.aging.snapshot.ActivityLevels` tuned to the
characteristic behaviour of one workload class:

``home``
    The paper's source system: four researchers' home directories.
    Moderate churn, log-normal sizes, heavy same-day compiler/editor
    churn.  This is the default everywhere else in the package.

``news``
    A Usenet spool: enormous volumes of small files with short lifetimes
    (articles expire), near-constant high utilization, very high
    create/delete rates, almost no in-place modification.  The classic
    FFS worst case.

``database``
    A small number of large files that grow and get rewritten in place;
    almost no short-lived churn; writes arrive in many chunks over long
    periods (heavy interleaving).

``pc``
    Personal computing: bursty daily activity, lower utilization, a mix
    of documents and applications, frequent whole-directory installs and
    removals (high cleanup probability).
"""

from __future__ import annotations

from typing import Dict

from repro.aging.snapshot import ActivityLevels
from repro.units import KB

PROFILES: Dict[str, ActivityLevels] = {
    "home": ActivityLevels(),
    "news": ActivityLevels(
        delete_rate=0.06,            # articles expire constantly
        modify_rate=0.0005,          # spool files are write-once
        short_pairs_per_mb=5.0,      # huge same-day churn
        delete_run_mean=8.0,         # expiry removes whole batches
        cleanup_probability=0.10,    # expire runs
        cleanup_fraction=0.3,
        longlived_median=2 * KB,     # articles are small
        longlived_sigma=1.2,
        shortlived_median=2 * KB,
        shortlived_sigma=1.0,
        chunk_threshold=64 * KB,
        max_file_size=512 * KB,
        plateau_utilization=0.80,    # spools run nearly full
        peak_amplitude=0.06,
    ),
    "database": ActivityLevels(
        delete_rate=0.0005,          # tables rarely dropped
        modify_rate=0.02,            # constant rewriting
        short_pairs_per_mb=0.2,      # few temp files
        delete_run_mean=1.0,
        cleanup_probability=0.01,
        cleanup_fraction=0.5,
        longlived_median=256 * KB,   # tables and indexes are big
        longlived_sigma=1.4,
        shortlived_median=16 * KB,
        shortlived_sigma=1.0,
        chunk_threshold=64 * KB,     # growth arrives in many chunks
        write_chunk_bytes=64 * KB,
        write_duration_frac=0.3,     # spread across the day: heavy
        max_file_size=16 * 1024 * KB,  # interleaving between tables
        plateau_utilization=0.75,
        peak_amplitude=0.08,
    ),
    "pc": ActivityLevels(
        delete_rate=0.004,
        modify_rate=0.006,
        short_pairs_per_mb=1.0,
        delete_run_mean=5.0,         # uninstalls remove whole trees
        cleanup_probability=0.08,
        cleanup_fraction=0.8,
        longlived_median=12 * KB,
        longlived_sigma=1.8,
        shortlived_median=4 * KB,
        shortlived_sigma=1.4,
        plateau_utilization=0.55,    # home PCs run half empty
        peak_amplitude=0.10,
        max_utilization=0.75,
    ),
}


#: Recommended ``newfs -i`` (bytes of space per inode) per profile.  A
#: news spool full of 2 KB articles needs a dense inode table, exactly
#: as administrators of the era tuned it; a database partition can get
#: by with a sparse one.
PROFILE_BYTES_PER_INODE: Dict[str, int] = {
    "home": 16 * KB,
    "news": 4 * KB,
    "database": 64 * KB,
    "pc": 16 * KB,
}


def get_profile(name: str) -> ActivityLevels:
    """Look up a workload profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None

"""File-system aging: workload synthesis, reconstruction, and replay.

Section 3 of the paper builds a ten-month aging workload from two data
sources that are not publicly available — nightly snapshots of a Harvard
home-directory file system and NFS traces from Network Appliance servers.
This package substitutes a *synthetic ground truth*: a statistical model
of the source file system's activity (:mod:`repro.aging.snapshot`)
generates every file operation over the simulation period, along with the
nightly snapshots an observer would have taken.

The paper's actual methodology is then reproduced faithfully on top:

* :mod:`repro.aging.diff` reconstructs a workload from the snapshots
  alone, applying the paper's heuristics (creation time = inode change
  time, modification = delete + rewrite, randomized deletion times);
* :mod:`repro.aging.nfstrace` supplies synthetic short-lived-file trace
  days that are folded into the reconstruction the way the paper folded
  in the NFS traces (busiest directories, time-shifted to peak activity);
* :mod:`repro.aging.replay` replays any workload against a simulated
  file system, steering every file into the cylinder group it occupied
  on the source file system via one seed directory per group.

Replaying the ground truth gives the "Real" curve of Figure 1; replaying
the reconstruction gives the "Simulated" curve, and is the workload used
for every other experiment.
"""

from repro.aging.workload import Workload, WorkloadRecord
from repro.aging.generator import AgingConfig, build_workloads
from repro.aging.replay import AgingReplayer, ReplayResult

__all__ = [
    "Workload",
    "WorkloadRecord",
    "AgingConfig",
    "build_workloads",
    "AgingReplayer",
    "ReplayResult",
]

"""Workload reconstruction from nightly snapshots (Section 3.1).

Given only the nightly snapshots of the source file system, rebuild an
approximate workload using exactly the paper's heuristics:

* a file present in today's snapshot but not yesterday's was **created**
  at its recorded inode change time;
* a file present yesterday but not today was **deleted** at a random
  time "during the range of times that other operations were occurring"
  that day;
* a file present in both snapshots whose inode change time moved was
  **modified**, treated as a delete followed by a rewrite at the new
  change time (files are seldom modified in place, per [Ousterhout85]).

The reconstruction is returned per-day so the short-lived NFS churn can
be folded into the right days before the final merge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.aging.snapshot import Snapshot
from repro.aging.workload import CREATE, DELETE, Workload, WorkloadRecord
from repro.rng import SeededStreams


class _IdAllocator:
    """Fresh file ids for reconstructed lifetimes."""

    def __init__(self) -> None:
        self._next = 0

    def take(self) -> int:
        """Return the next unused file id."""
        fid = self._next
        self._next += 1
        return fid


def diff_snapshots(
    snapshots: Sequence[Snapshot], seed: int = 0
) -> List[List[WorkloadRecord]]:
    """Reconstruct per-day operations from a snapshot series.

    Day ``d``'s operations are those inferred between snapshot ``d-1``
    (empty for day 0, matching the paper's choice of a 9%-full starting
    point) and snapshot ``d``.  Returns one list of records per day.
    """
    streams = SeededStreams(seed)
    ids = _IdAllocator()
    live_fid: Dict[int, int] = {}  # source ino -> reconstructed file id
    days: List[List[WorkloadRecord]] = []
    previous: Optional[Snapshot] = None
    for snapshot in snapshots:
        day_ops: List[WorkloadRecord] = []
        old = previous.files if previous is not None else {}
        new = snapshot.files
        day = snapshot.day
        rng = streams.get("delete-times")
        rng.seed(f"{seed}:delete-times:{day}")

        created = [ino for ino in new if ino not in old]
        deleted = [ino for ino in old if ino not in new]
        modified = [
            ino
            for ino in new
            if ino in old and new[ino].ctime != old[ino].ctime
        ]

        # Creates: timestamped by the inode change time (clamped into
        # the day in case the snapshot carried a stale value).
        for ino in created:
            record = new[ino]
            when = _clamp_into_day(record.ctime, day)
            fid = ids.take()
            live_fid[ino] = fid
            day_ops.append(
                WorkloadRecord(
                    time=when, op=CREATE, file_id=fid, size=record.size,
                    src_ino=ino, directory=record.directory,
                )
            )

        # The observable span of today's activity, for delete times.
        span = _activity_span(
            [new[ino].ctime for ino in created]
            + [new[ino].ctime for ino in modified],
            day,
        )

        # Deletes: random times within today's activity span.
        for ino in deleted:
            record = old[ino]
            fid = live_fid.pop(ino)
            when = rng.uniform(*span)
            day_ops.append(
                WorkloadRecord(
                    time=when, op=DELETE, file_id=fid, size=0,
                    src_ino=ino, directory=record.directory,
                )
            )

        # Modifies: delete immediately before the rewrite.
        for ino in modified:
            record = new[ino]
            when = _clamp_into_day(record.ctime, day)
            old_fid = live_fid.pop(ino)
            day_ops.append(
                WorkloadRecord(
                    time=max(day + 1e-6, when - 1e-4), op=DELETE,
                    file_id=old_fid, size=0, src_ino=ino,
                    directory=old[ino].directory,
                )
            )
            fid = ids.take()
            live_fid[ino] = fid
            day_ops.append(
                WorkloadRecord(
                    time=when, op=CREATE, file_id=fid, size=record.size,
                    src_ino=ino, directory=record.directory,
                )
            )

        days.append(day_ops)
        previous = snapshot
    return days


def merge_days(days: Sequence[Sequence[WorkloadRecord]]) -> Workload:
    """Merge per-day operation lists into a validated workload."""
    records: List[WorkloadRecord] = []
    for day_ops in days:
        records.extend(day_ops)
    workload = Workload(records)
    workload.validate()
    return workload


def directory_activity(
    day_ops: Sequence[WorkloadRecord],
) -> List[Tuple[str, int, float]]:
    """Directories ranked by change count for one day.

    Returns (directory, change count, mean op time) sorted by descending
    activity — the ranking used to decide where the short-lived NFS
    files go and what time to shift them to (Section 3.1).
    """
    counts: Dict[str, int] = {}
    time_sums: Dict[str, float] = {}
    for record in day_ops:
        counts[record.directory] = counts.get(record.directory, 0) + 1
        time_sums[record.directory] = time_sums.get(record.directory, 0.0) + record.time
    ranked = sorted(counts, key=lambda d: (-counts[d], d))
    return [(d, counts[d], time_sums[d] / counts[d]) for d in ranked]


def _clamp_into_day(when: float, day: int) -> float:
    return min(day + 0.9999, max(day + 1e-6, when))


def _activity_span(times: List[float], day: int) -> Tuple[float, float]:
    if not times:
        return (day + 0.1, day + 0.9)
    lo = max(day + 1e-6, min(times))
    hi = min(day + 0.9999, max(times))
    if hi <= lo:
        hi = min(day + 0.9999, lo + 0.1)
    return (lo, hi)

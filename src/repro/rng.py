"""Deterministic random-number streams, one per subsystem.

The aging study depends on being able to replay the *identical* operation
sequence against two file systems that differ only in allocation policy
(Section 4 of the paper).  To guarantee that, every source of randomness in
the workload generator draws from a named substream derived from a single
master seed.  Two generators built from the same master seed always produce
identical workloads, no matter how the consuming code interleaves its own
randomness.
"""

from __future__ import annotations

import hashlib
import random

#: Re-exported generator type, so consumers can annotate substream-derived
#: generators without importing the stdlib module (which the determinism
#: lint bans outside this package).
Random = random.Random


def substream(master_seed: int, name: str) -> random.Random:
    """Return an independent :class:`random.Random` for subsystem ``name``.

    The substream seed is derived by hashing the master seed with the
    subsystem name, so adding a new named stream never perturbs existing
    ones (unlike, say, drawing seeds sequentially from a parent RNG).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class SeededStreams:
    """A bundle of named substreams sharing one master seed.

    Example
    -------
    >>> streams = SeededStreams(42)
    >>> r1 = streams.get("file-sizes")
    >>> r2 = SeededStreams(42).get("file-sizes")
    >>> r1.random() == r2.random()
    True
    """

    def __init__(self, master_seed: int):
        self.master_seed = master_seed
        self._streams: "dict[str, random.Random]" = {}

    def get(self, name: str) -> random.Random:
        """Return (creating on first use) the substream called ``name``."""
        if name not in self._streams:
            self._streams[name] = substream(self.master_seed, name)
        return self._streams[name]

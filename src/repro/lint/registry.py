"""Rule base class and registry.

A rule is a class with a stable id (``R001``), a short name, a one-line
summary, and a ``check`` method that walks one parsed module and yields
findings.  Rules register themselves with the :func:`register` decorator
at import time; the CLI's ``--list-rules`` and ``--explain`` read
straight from the registry, so the rule's docstring *is* its
documentation — there is no second place to keep in sync.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Type

from repro.lint.findings import Finding


@dataclass
class ModuleContext:
    """One parsed module, plus everything a rule needs to judge it.

    ``module_name`` is the dotted name under the ``repro`` package
    (``repro.ffs.bitmap``), or ``None`` for files outside any repro
    package — fixture snippets in tests, scripts — which rules treat as
    library code with no exemptions.
    """

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    module_name: Optional[str]
    #: local name -> fully dotted origin, built from import statements:
    #: ``import numpy.random as npr`` maps ``npr -> numpy.random``;
    #: ``from datetime import datetime as dt`` maps ``dt ->
    #: datetime.datetime``.
    aliases: Dict[str, str] = field(default_factory=dict)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` (1-based line/col)."""
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule.rule_id,
            message=message,
        )

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted path, expanding
        import aliases at the base.

        ``dt.now`` with ``from datetime import datetime as dt`` resolves
        to ``datetime.datetime.now``.  Returns ``None`` for anything
        other than a plain attribute chain rooted at a name.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def in_package(self, prefix: str) -> bool:
        """True when this module lives at or under ``prefix``."""
        if self.module_name is None:
            return False
        return self.module_name == prefix or self.module_name.startswith(prefix + ".")


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``name`` / ``summary`` and implement
    :meth:`check`.  The class docstring becomes the ``--explain`` text:
    write it for the engineer who just got flagged — what contract the
    rule protects, why it matters, and what the compliant form looks
    like.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def explain(cls) -> str:
        """Full documentation for ``--explain`` (the class docstring)."""
        import inspect

        return inspect.cleandoc(cls.__doc__ or cls.summary)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by id."""
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Type[Rule]]:
    """Look up one rule class by id (``None`` when unknown)."""
    return _REGISTRY.get(rule_id)


def build_context(path: Path, rel_path: str, source: str) -> ModuleContext:
    """Parse ``source`` and assemble the per-module context.

    Raises :class:`SyntaxError` when the file does not parse; the engine
    turns that into a non-suppressible ``E000`` finding.
    """
    tree = ast.parse(source, filename=str(path))
    return ModuleContext(
        path=path,
        rel_path=rel_path,
        source=source,
        tree=tree,
        module_name=_module_name(path),
        aliases=_collect_aliases(tree),
    )


def _module_name(path: Path) -> Optional[str]:
    """Dotted module name under the rightmost ``repro`` path component."""
    parts = [p for p in path.parts]
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    mod_parts = list(parts[idx:])
    last = mod_parts[-1]
    if last.endswith(".py"):
        last = last[:-3]
        if last == "__init__":
            mod_parts = mod_parts[:-1]
        else:
            mod_parts[-1] = last
    return ".".join(mod_parts)


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to their dotted import origin (module level only)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases

"""Fixed-point dataflow over the call graph.

The graph rules need whole-program facts — "can this function reach a
clock read?", "what unit does this function return?" — that are defined
recursively over callees.  With recursion (the call graph has cycles:
``repair_filesystem`` ↔ ``check_filesystem``-style mutual calls, and
self-recursive tree walks) a single bottom-up pass cannot compute them;
this module runs the standard worklist algorithm instead.

:func:`solve` makes only two demands of the per-function ``transfer``
function, and both are the caller's responsibility to uphold:

* **monotone** — re-running transfer with "bigger" callee facts may
  only grow the result (for whatever order the fact lattice has);
* **finite lattice** — each function's fact can change only finitely
  many times.

Under those rules the worklist terminates at the unique least fixed
point.  Everything is iterated in sorted order (functions, callers), so
a given tree always produces the identical solution — the analyzer is
held to the same determinism bar it enforces.

A defensive iteration cap turns a non-monotone transfer (a rule bug)
into a loud :class:`FixedPointError` instead of a silent infinite loop.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, TypeVar

from repro.lint.graph import CallGraph

T = TypeVar("T")


class FixedPointError(RuntimeError):
    """The worklist failed to converge: the transfer is not monotone."""


def solve(
    graph: CallGraph,
    initial: Callable[[str], T],
    transfer: Callable[[str, Dict[str, T]], T],
) -> Dict[str, T]:
    """Compute the least fixed point of ``transfer`` over every function.

    ``initial(qualname)`` seeds each function's fact;
    ``transfer(qualname, facts)`` recomputes one function's fact from
    the current fact map (reading its callees' entries).  When a fact
    changes, every caller of that function is requeued.

    Facts are compared with ``==`` to detect change, so fact types
    should be simple values or frozen dataclasses/tuples.
    """
    order = sorted(graph.functions)
    facts: Dict[str, T] = {name: initial(name) for name in order}
    pending = deque(order)
    queued = set(order)
    # Each function can be recomputed at most (lattice height × callers)
    # times; far less in practice.  The cap only exists to catch a
    # non-monotone transfer, so it is generous.
    cap = max(1000, 50 * len(order))
    steps = 0
    while pending:
        steps += 1
        if steps > cap:
            raise FixedPointError(
                f"dataflow failed to converge after {cap} steps; "
                "the transfer function is not monotone"
            )
        name = pending.popleft()
        queued.discard(name)
        new_fact = transfer(name, facts)
        if new_fact != facts[name]:
            facts[name] = new_fact
            for caller in graph.callers_of(name):
                if caller not in queued:
                    pending.append(caller)
                    queued.add(caller)
    return facts

"""Committed baseline for grandfathered findings.

When a new rule lands against an old tree, the pre-existing violations
would fail every PR until someone fixes them all at once.  The baseline
breaks that deadlock: ``repro-ffs lint --update-baseline`` records the
current findings in ``.replint-baseline.json``, the gate stays green,
and the debt is paid down file by file — the baseline only shrinks.

Fingerprinting is by ``(path, rule id, stripped source-line text)``
rather than line number, so unrelated edits above a grandfathered
finding do not un-suppress it, while any edit *to the flagged line
itself* re-surfaces the finding (the text no longer matches).  Equal
fingerprints are counted, not set-deduplicated: a baseline with one
entry absorbs one matching finding, not every identical one.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import PARSE_ERROR, Finding

SCHEMA = "replint.baseline/v1"
DEFAULT_BASELINE = ".replint-baseline.json"

_Fingerprint = Tuple[str, str, str]


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Optional["Counter[_Fingerprint]"] = None) -> None:
        self._counts: Counter[_Fingerprint] = Counter(counts or {})

    def __len__(self) -> int:
        return sum(self._counts.values())

    @staticmethod
    def _fingerprint(finding: Finding, source_lines: Sequence[str]) -> _Fingerprint:
        if 1 <= finding.line <= len(source_lines):
            text = source_lines[finding.line - 1].strip()
        else:
            text = ""
        return (finding.path, finding.rule_id, text)

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], sources: Dict[str, Sequence[str]]
    ) -> "Baseline":
        """Build a baseline absorbing ``findings`` (``--update-baseline``).

        ``sources`` maps repo-relative paths to their source lines.
        Parse errors are never baselined.
        """
        counts: Counter[_Fingerprint] = Counter()
        for finding in findings:
            if finding.rule_id == PARSE_ERROR:
                continue
            lines = sources.get(finding.path, [])
            counts[cls._fingerprint(finding, lines)] += 1
        return cls(counts)

    def filter(
        self, findings: Sequence[Finding], sources: Dict[str, Sequence[str]]
    ) -> Tuple[List[Finding], int]:
        """Drop findings covered by the baseline.

        Returns ``(surviving findings, suppressed count)``.  Consumption
        is a multiset subtraction: each baseline entry absorbs at most
        as many findings as its recorded count.
        """
        budget = Counter(self._counts)
        surviving: List[Finding] = []
        suppressed = 0
        for finding in findings:
            if finding.rule_id == PARSE_ERROR:
                surviving.append(finding)
                continue
            fp = self._fingerprint(finding, sources.get(finding.path, []))
            if budget[fp] > 0:
                budget[fp] -= 1
                suppressed += 1
            else:
                surviving.append(finding)
        return surviving, suppressed

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unknown baseline schema {data.get('schema')!r} "
                f"(expected {SCHEMA})"
            )
        counts: Counter[_Fingerprint] = Counter()
        for entry in data.get("findings", []):
            fp = (entry["path"], entry["rule"], entry["line_text"])
            counts[fp] += int(entry.get("count", 1))
        return cls(counts)

    def dump(self, path: Path) -> None:
        """Write the baseline file (sorted, so diffs are readable)."""
        entries = [
            {"path": fp[0], "rule": fp[1], "line_text": fp[2], "count": count}
            for fp, count in sorted(self._counts.items())
        ]
        payload = {"schema": SCHEMA, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n")

"""Committed baseline for grandfathered findings.

When a new rule lands against an old tree, the pre-existing violations
would fail every PR until someone fixes them all at once.  The baseline
breaks that deadlock: ``repro-ffs lint --update-baseline`` records the
current findings in ``.replint-baseline.json``, the gate stays green,
and the debt is paid down file by file — the baseline only shrinks.

Fingerprinting (v2) is by ``(path, rule id, enclosing symbol path,
stripped source-line text)`` rather than line number, so unrelated
edits above a grandfathered finding do not un-suppress it, while any
edit *to the flagged line itself* re-surfaces the finding (the text no
longer matches).  The symbol component fixes the v1 fragility where
two identical lines in different functions shared one fingerprint: a
baseline entry recorded against ``Replayer._sample`` no longer absorbs
a brand-new identical violation in some other function.  Equal
fingerprints are counted, not set-deduplicated: a baseline with one
entry absorbs one matching finding, not every identical one.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import schemas
from repro.lint.findings import PARSE_ERROR, Finding

SCHEMA = schemas.LINT_BASELINE
DEFAULT_BASELINE = ".replint-baseline.json"

#: ``(start line, end line, dotted symbol)`` spans, as produced by
#: :func:`build_symbol_index`.  Spans nest; :func:`symbol_at` picks the
#: innermost one.
SymbolIndex = List[Tuple[int, int, str]]

#: Symbol recorded for findings outside any def/class (or in a file
#: that failed to parse, where no index exists).
MODULE_SYMBOL = "<module>"

_Fingerprint = Tuple[str, str, str, str]


def build_symbol_index(tree: ast.AST) -> SymbolIndex:
    """Map an AST to sorted ``(start, end, qualname)`` spans.

    Qualnames are dotted through nesting (``Class.method``,
    ``outer.inner``) without the module prefix — the path component of
    the fingerprint already anchors the file.
    """
    spans: SymbolIndex = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{prefix}.{child.name}" if prefix else child.name
                end = getattr(child, "end_lineno", None) or child.lineno
                spans.append((child.lineno, end, name))
                walk(child, name)
            else:
                walk(child, prefix)

    walk(tree, "")
    spans.sort()
    return spans


def symbol_at(index: Sequence[Tuple[int, int, str]], line: int) -> str:
    """Innermost symbol whose span contains ``line``."""
    best = MODULE_SYMBOL
    best_size = None
    for start, end, name in index:
        if start <= line <= end:
            size = end - start
            if best_size is None or size <= best_size:
                best, best_size = name, size
    return best


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Optional["Counter[_Fingerprint]"] = None) -> None:
        self._counts: Counter[_Fingerprint] = Counter(counts or {})

    def __len__(self) -> int:
        return sum(self._counts.values())

    @staticmethod
    def _fingerprint(
        finding: Finding,
        source_lines: Sequence[str],
        symbols: Optional[Sequence[Tuple[int, int, str]]],
    ) -> _Fingerprint:
        if 1 <= finding.line <= len(source_lines):
            text = source_lines[finding.line - 1].strip()
        else:
            text = ""
        symbol = symbol_at(symbols, finding.line) if symbols else MODULE_SYMBOL
        return (finding.path, finding.rule_id, symbol, text)

    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        sources: Dict[str, Sequence[str]],
        symbols: Optional[Dict[str, SymbolIndex]] = None,
    ) -> "Baseline":
        """Build a baseline absorbing ``findings`` (``--update-baseline``).

        ``sources`` maps repo-relative paths to their source lines and
        ``symbols`` to their :func:`build_symbol_index` spans.  Parse
        errors are never baselined.
        """
        symbols = symbols or {}
        counts: Counter[_Fingerprint] = Counter()
        for finding in findings:
            if finding.rule_id == PARSE_ERROR:
                continue
            lines = sources.get(finding.path, [])
            counts[cls._fingerprint(finding, lines, symbols.get(finding.path))] += 1
        return cls(counts)

    def filter(
        self,
        findings: Sequence[Finding],
        sources: Dict[str, Sequence[str]],
        symbols: Optional[Dict[str, SymbolIndex]] = None,
    ) -> Tuple[List[Finding], int]:
        """Drop findings covered by the baseline.

        Returns ``(surviving findings, suppressed count)``.  Consumption
        is a multiset subtraction: each baseline entry absorbs at most
        as many findings as its recorded count.
        """
        symbols = symbols or {}
        budget = Counter(self._counts)
        surviving: List[Finding] = []
        suppressed = 0
        for finding in findings:
            if finding.rule_id == PARSE_ERROR:
                surviving.append(finding)
                continue
            fp = self._fingerprint(
                finding,
                sources.get(finding.path, []),
                symbols.get(finding.path),
            )
            if budget[fp] > 0:
                budget[fp] -= 1
                suppressed += 1
            else:
                surviving.append(finding)
        return surviving, suppressed

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("schema") != SCHEMA:
            hint = ""
            if data.get("schema") == "replint.baseline/v1":  # replint: disable=R102  (deliberate reference to the retired v1 tag for the migration hint)
                hint = "; re-record it with --update-baseline"
            raise ValueError(
                f"{path}: unknown baseline schema {data.get('schema')!r} "
                f"(expected {SCHEMA}){hint}"
            )
        counts: Counter[_Fingerprint] = Counter()
        for entry in data.get("findings", []):
            fp = (
                entry["path"],
                entry["rule"],
                entry.get("symbol", MODULE_SYMBOL),
                entry["line_text"],
            )
            counts[fp] += int(entry.get("count", 1))
        return cls(counts)

    def dump(self, path: Path) -> None:
        """Write the baseline file (sorted, so diffs are readable)."""
        entries = [
            {
                "path": fp[0],
                "rule": fp[1],
                "symbol": fp[2],
                "line_text": fp[3],
                "count": count,
            }
            for fp, count in sorted(self._counts.items())
        ]
        payload = {"schema": SCHEMA, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n")

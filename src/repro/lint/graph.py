"""Whole-program import/call graph for the graph-powered lint rules.

replint's original rules judge one module at a time, which is exactly
as far as a syntactic check can see.  The v2 rules (R101 transitive
determinism, R103 interprocedural unit hygiene) need to answer a harder
question: *what can this function reach?*  This module builds the
project-wide call graph they walk.

The builder is AST-only — nothing is imported or executed — and aims to
resolve the call shapes this codebase actually uses:

* direct calls to module-level functions, through ``import`` aliases
  (``from repro.aging.replay import age_file_system``,
  ``from repro.aging import replay; replay.age_file_system(...)``);
* constructor calls (``FileSystem(...)`` resolves to
  ``FileSystem.__init__`` and, for dataclasses, ``__post_init__``);
* ``self.method()`` through the enclosing class, its project bases, and
  any project subclass override (the receiver may be a subclass
  instance);
* attribute calls through *typed* receivers: parameter annotations,
  ``AnnAssign`` locals, ``self.attr`` types harvested from ``__init__``
  assignments and dataclass fields, and the return annotations of
  already-resolved callees (``tr = obs.tracer_or_none()`` types ``tr``
  as ``Tracer``) — chains like ``self.fs.sb.cgs`` resolve link by link;
* when the receiver's type is unknown, a conservative class-hierarchy
  fallback: the call targets *every* project method of that name.

What cannot be named at all — calling a parameter, a lambda, the result
of another call — becomes a ``dynamic`` call site: the lattice bottom.
Rules must treat a dynamic site as "anything may happen"; R101 reports
a function with dynamic sites on a protected path as *unprovable*
rather than silently passing it.

``repro-ffs lint --graph-json FILE`` exports the whole structure
(schema :data:`repro.schemas.LINT_GRAPH`) for offline inspection.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import schemas
from repro.lint.registry import ModuleContext

#: Call-site resolution kinds, from most to least precise.
DIRECT = "direct"  # module-level function, resolved by name/alias
CONSTRUCTOR = "constructor"  # class instantiation
SELF = "self"  # self.method() through the enclosing class
TYPED = "typed"  # receiver type known from annotations
CHA = "cha"  # name-based fallback over every class's methods
EXTERNAL = "external"  # resolves outside the project (stdlib, builtin)
DYNAMIC = "dynamic"  # cannot be named: the lattice bottom

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class FunctionNode:
    """One function or method in the project."""

    qualname: str  #: e.g. ``repro.aging.replay.AgingReplayer.replay``
    module: str
    rel_path: str
    name: str
    lineno: int
    end_lineno: int
    is_method: bool
    class_name: Optional[str]  #: enclosing class qualname (methods only)
    params: Tuple[str, ...]  #: positional-capable parameter names, in order
    decorators: Tuple[str, ...]
    node: ast.AST = field(repr=False)
    return_annotation: Optional[ast.expr] = field(default=None, repr=False)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    caller: str
    lineno: int
    col: int
    callee_text: str  #: rendered callee for diagnostics (best effort)
    kind: str
    #: Resolved project targets (function qualnames).  Several targets
    #: mean conservative dispatch: any of them may be the callee.
    targets: Tuple[str, ...] = ()
    #: Fully dotted external name for ``external`` sites, when known.
    external: Optional[str] = None
    node: Optional[ast.Call] = field(default=None, repr=False)


@dataclass
class ClassInfo:
    """One project class: methods, bases, and attribute types."""

    qualname: str
    module: str
    name: str
    lineno: int
    #: base-class qualnames resolved to project classes
    bases: Tuple[str, ...] = ()
    #: method name -> function qualname
    methods: Dict[str, str] = field(default_factory=dict)
    #: attribute name -> class qualname (from annotations/assignments)
    attr_types: Dict[str, Optional[str]] = field(default_factory=dict)


class CallGraph:
    """The resolved project: functions, classes, and call edges."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        #: method bare name -> every project function qualname with it
        self.methods_by_name: Dict[str, List[str]] = {}
        #: class qualname -> direct project subclasses
        self.subclasses: Dict[str, List[str]] = {}
        #: module dotted name -> its parsed context (annotation lookups)
        self.modules: Dict[str, ModuleContext] = {}
        #: class bare name -> qualnames (re-export tolerant matching)
        self.classes_by_bare: Dict[str, List[str]] = {}
        #: module -> every project module it (transitively) imports,
        #: itself included.  Bounds the CHA fallback: a module cannot
        #: call a method of a class it could never have imported.
        self.import_closure: Dict[str, Set[str]] = {}
        self._callers: Optional[Dict[str, List[str]]] = None

    # -- queries -------------------------------------------------------

    def sites(self, qualname: str) -> List[CallSite]:
        """Call sites inside ``qualname`` (empty for unknown names)."""
        return self.calls.get(qualname, [])

    def callers_of(self, qualname: str) -> List[str]:
        """Functions with at least one site targeting ``qualname``."""
        if self._callers is None:
            callers: Dict[str, Set[str]] = {}
            for caller, sites in self.calls.items():
                for site in sites:
                    for target in site.targets:
                        callers.setdefault(target, set()).add(caller)
            self._callers = {
                name: sorted(who) for name, who in callers.items()
            }
        return self._callers.get(qualname, [])

    def reachable_from(self, roots: Iterable[str]) -> List[str]:
        """Every function reachable from ``roots`` via resolved edges,
        in deterministic (sorted-discovery) order, roots included."""
        seen: Set[str] = set()
        order: List[str] = []
        frontier = sorted(set(roots) & set(self.functions))
        while frontier:
            nxt: Set[str] = set()
            for name in frontier:
                if name in seen:
                    continue
                seen.add(name)
                order.append(name)
                for site in self.sites(name):
                    for target in site.targets:
                        if target not in seen:
                            nxt.add(target)
            frontier = sorted(nxt)
        return order

    def method_candidates(self, class_qualname: str, method: str) -> List[str]:
        """Resolve ``method`` on ``class_qualname``: the class's own or
        inherited definition, plus every subclass override (the static
        type may be a base of the runtime type)."""
        found: List[str] = []
        inherited = self._lookup_inherited(class_qualname, method, set())
        if inherited is not None:
            found.append(inherited)
        for sub in self._all_subclasses(class_qualname):
            info = self.classes.get(sub)
            if info is not None and method in info.methods:
                found.append(info.methods[method])
        return sorted(set(found))

    def _lookup_inherited(
        self, class_qualname: str, method: str, seen: Set[str]
    ) -> Optional[str]:
        if class_qualname in seen:
            return None
        seen.add(class_qualname)
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            found = self._lookup_inherited(base, method, seen)
            if found is not None:
                return found
        return None

    def _all_subclasses(self, class_qualname: str) -> List[str]:
        out: List[str] = []
        frontier = list(self.subclasses.get(class_qualname, []))
        seen: Set[str] = set()
        while frontier:
            cls = frontier.pop()
            if cls in seen:
                continue
            seen.add(cls)
            out.append(cls)
            frontier.extend(self.subclasses.get(cls, []))
        return sorted(out)

    def attr_type(self, class_qualname: str, attr: str) -> Optional[str]:
        """Type of ``attr`` on ``class_qualname``, searching bases."""
        seen: Set[str] = set()
        frontier = [class_qualname]
        while frontier:
            cls = frontier.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            info = self.classes.get(cls)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            frontier.extend(info.bases)
        return None

    # -- export --------------------------------------------------------

    def to_document(self) -> Dict[str, object]:
        """JSON form for ``repro-ffs lint --graph-json``."""
        functions = [
            {
                "qualname": fn.qualname,
                "path": fn.rel_path,
                "line": fn.lineno,
                "class": fn.class_name,
                "params": list(fn.params),
                "decorators": list(fn.decorators),
            }
            for _, fn in sorted(self.functions.items())
        ]
        calls = []
        kinds: Dict[str, int] = {}
        for caller in sorted(self.calls):
            for site in self.calls[caller]:
                kinds[site.kind] = kinds.get(site.kind, 0) + 1
                calls.append(
                    {
                        "caller": caller,
                        "line": site.lineno,
                        "col": site.col,
                        "callee": site.callee_text,
                        "kind": site.kind,
                        "targets": list(site.targets),
                        "external": site.external,
                    }
                )
        return {
            "schema": schemas.LINT_GRAPH,
            "functions": functions,
            "classes": sorted(self.classes),
            "calls": calls,
            "stats": {
                "functions": len(self.functions),
                "classes": len(self.classes),
                "call_sites": sum(len(s) for s in self.calls.values()),
                "by_kind": {k: kinds[k] for k in sorted(kinds)},
            },
        }


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------


def build_graph(modules: Sequence[ModuleContext]) -> CallGraph:
    """Index every module and resolve every call site.

    Modules without a dotted name (files outside any ``repro`` package)
    are skipped: they cannot be imported, so nothing can call into them
    and their own calls cannot leave the file usefully.

    Build order matters: the function/class index and the bare-name
    class map come first (so cross-module forward references resolve),
    then class facts (bases, attribute types), then the subclass map,
    and only then call resolution — which consumes all of the above.
    """
    graph = CallGraph()
    indexed = [m for m in modules if m.module_name is not None]
    for module in indexed:
        if module.module_name is None:
            continue
        graph.modules[module.module_name] = module
        _index_module(graph, module)
    for qualname, info in graph.classes.items():
        graph.classes_by_bare.setdefault(info.name, []).append(qualname)
    _compute_import_closure(graph)
    for module in indexed:
        _harvest_class_facts(graph, module)
    for qualname in sorted(graph.classes):
        for base in graph.classes[qualname].bases:
            graph.subclasses.setdefault(base, []).append(qualname)
    for module in indexed:
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if fn.module != module.module_name:
                continue
            graph.calls[qualname] = _FunctionResolver(graph, module, fn).run()
    return graph


#: Backwards-friendly alias: the engine and CLI import this name.
build_project_graph = build_graph


def _render_callee(node: ast.expr) -> str:
    """Best-effort rendering of a callee expression for diagnostics."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _param_names(args: ast.arguments) -> Tuple[str, ...]:
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return tuple(names)


def _index_module(graph: CallGraph, module: ModuleContext) -> None:
    prefix = module.module_name
    if prefix is None:
        return

    def add_function(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        qualname: str,
        class_qualname: Optional[str],
    ) -> None:
        decorators = tuple(
            module.dotted(d) or _render_callee(d) for d in node.decorator_list
        )
        graph.functions[qualname] = FunctionNode(
            qualname=qualname,
            module=prefix,
            rel_path=module.rel_path,
            name=node.name,
            lineno=node.lineno,
            end_lineno=getattr(node, "end_lineno", node.lineno) or node.lineno,
            is_method=class_qualname is not None,
            class_name=class_qualname,
            params=_param_names(node.args),
            decorators=decorators,
            node=node,
            return_annotation=node.returns,
        )
        if class_qualname is not None:
            graph.methods_by_name.setdefault(node.name, []).append(qualname)
        # Nested defs become their own nodes under the parent's name.
        for child in node.body:
            walk(child, qualname, None)

    def add_class(node: ast.ClassDef, qualname: str) -> None:
        info = ClassInfo(
            qualname=qualname,
            module=prefix,
            name=node.name,
            lineno=node.lineno,
        )
        graph.classes[qualname] = info
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qualname}.{child.name}"
                info.methods[child.name] = method_qual
                add_function(child, method_qual, qualname)
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                # Dataclass fields / annotated class attributes.
                info.attr_types[child.target.id] = _annotation_class(
                    child.annotation, module, graph
                )
            elif isinstance(child, ast.ClassDef):
                add_class(child, f"{qualname}.{child.name}")

    def walk(node: ast.stmt, parent_qual: str, class_qual: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(node, f"{parent_qual}.{node.name}", class_qual)
        elif isinstance(node, ast.ClassDef):
            add_class(node, f"{parent_qual}.{node.name}")
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    walk(child, parent_qual, class_qual)

    for stmt in module.tree.body:
        walk(stmt, prefix, None)


def _compute_import_closure(graph: CallGraph) -> None:
    """Transitive project-module imports, from each module's aliases.

    An alias target like ``repro.ffs.filesystem.FileSystem`` contributes
    its longest known module prefix (``repro.ffs.filesystem``).  Package
    ``__init__`` re-exports mean importing ``repro.ffs`` also pulls in
    whatever ``repro.ffs`` itself imports, which the closure captures
    naturally.
    """
    known = set(graph.modules)
    direct: Dict[str, Set[str]] = {}
    for name, module in graph.modules.items():
        imports = {name}
        for target in module.aliases.values():
            probe = target
            while probe:
                if probe in known:
                    imports.add(probe)
                    break
                if "." not in probe:
                    break
                probe = probe.rsplit(".", 1)[0]
        direct[name] = imports
    for name in sorted(known):
        closure: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in closure:
                continue
            closure.add(current)
            frontier.extend(direct.get(current, ()))
        graph.import_closure[name] = closure


def resolve_class_name(graph: CallGraph, dotted: str) -> Optional[str]:
    """Match a dotted or bare class reference to a project class.

    Exact qualname first; then re-export tolerant matching by bare name
    when that bare name is unique project-wide (``from repro.ffs import
    FileSystem`` re-exports ``repro.ffs.filesystem.FileSystem``).
    """
    if dotted in graph.classes:
        return dotted
    bare = dotted.rsplit(".", 1)[-1]
    candidates = graph.classes_by_bare.get(bare, [])
    if len(candidates) == 1:
        return candidates[0]
    return None


_OPTIONAL_WRAPPERS = {"Optional", "typing.Optional"}


def _annotation_class(
    annotation: Optional[ast.expr], module: ModuleContext, graph: CallGraph
) -> Optional[str]:
    """Resolve a type annotation to a project class qualname.

    Handles ``X``, ``"X"`` (string annotations), ``Optional[X]``,
    ``X | None``, and nested quoting.  Container types (``List[X]``,
    ``Dict[...]``) resolve to ``None``: the receiver is the container,
    not the element, and container methods are builtins.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value.strip(), mode="eval")
        except SyntaxError:
            return None
        return _annotation_class(parsed.body, module, graph)
    if isinstance(annotation, ast.Subscript):
        head = module.dotted(annotation.value)
        if head is not None and head.rsplit(".", 1)[-1] == "Optional":
            return _annotation_class(annotation.slice, module, graph)
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        left = _annotation_class(annotation.left, module, graph)
        if left is not None:
            return left
        return _annotation_class(annotation.right, module, graph)
    dotted = module.dotted(annotation)
    if dotted is None or dotted == "None":
        return None
    return resolve_class_name(graph, dotted)


def _harvest_class_facts(graph: CallGraph, module: ModuleContext) -> None:
    """Fill in class bases and ``self.attr`` types for one module."""
    if module.module_name is None:
        return

    def class_for(node: ast.ClassDef, qualname: str) -> None:
        info = graph.classes.get(qualname)
        if info is None:
            return
        bases: List[str] = []
        for base in node.bases:
            dotted = module.dotted(base)
            if dotted is None:
                continue
            resolved = resolve_class_name(graph, dotted)
            if resolved is not None:
                bases.append(resolved)
        info.bases = tuple(bases)

        init_qual = info.methods.get("__init__")
        init = graph.functions.get(init_qual) if init_qual else None
        if init is not None and isinstance(
            init.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            param_types: Dict[str, Optional[str]] = {}
            fn_node = init.node
            for arg in list(fn_node.args.posonlyargs) + list(fn_node.args.args):
                param_types[arg.arg] = _annotation_class(
                    arg.annotation, module, graph
                )
            for kwarg in fn_node.args.kwonlyargs:
                param_types[kwarg.arg] = _annotation_class(
                    kwarg.annotation, module, graph
                )
            for stmt in ast.walk(fn_node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann: Optional[str] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    ann = _annotation_class(stmt.annotation, module, graph)
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                    inferred = ann
                    if inferred is None and isinstance(value, ast.Name):
                        inferred = param_types.get(value.id)
                    if inferred is None and isinstance(value, ast.Call):
                        dotted = module.dotted(value.func)
                        if dotted is not None:
                            inferred = resolve_class_name(graph, dotted)
                    existing = info.attr_types.get(attr, "unset")
                    if existing == "unset":
                        info.attr_types[attr] = inferred
                    elif existing != inferred:
                        # Conflicting assignments: give up on this attr.
                        info.attr_types[attr] = None

    prefix = module.module_name

    def walk(node: ast.stmt, parent_qual: str) -> None:
        if isinstance(node, ast.ClassDef):
            class_for(node, f"{parent_qual}.{node.name}")
            for child in node.body:
                walk(child, f"{parent_qual}.{node.name}")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                walk(child, f"{parent_qual}.{node.name}")
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    walk(child, parent_qual)

    for stmt in module.tree.body:
        walk(stmt, prefix)


class _FunctionResolver:
    """Resolves every call inside one function body."""

    def __init__(
        self,
        graph: CallGraph,
        module: ModuleContext,
        fn: FunctionNode,
    ) -> None:
        self.graph = graph
        self.module = module
        self.fn = fn
        #: local name -> project class qualname (the receiver-type env)
        self.types: Dict[str, Optional[str]] = {}
        #: local name -> class qualname for names bound to the class
        #: *object* itself (``cls`` in classmethods): calling one is a
        #: constructor call, not an instance-method call.
        self.class_objects: Dict[str, str] = {}
        #: local names that hold something callable-but-unnamed
        self.opaque: Set[str] = set()
        self.sites: List[CallSite] = []
        self._seed_param_types()

    def _seed_param_types(self) -> None:
        node = self.fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            if arg.arg == "self" and self.fn.is_method:
                self.types["self"] = self.fn.class_name
                continue
            if (
                arg.arg == "cls"
                and self.fn.is_method
                and self.fn.class_name is not None
            ):
                # ``cls`` in a classmethod: calling it constructs the
                # enclosing class (or a subclass — dispatch handled by
                # the constructor targets).
                self.class_objects["cls"] = self.fn.class_name
                continue
            resolved = _annotation_class(arg.annotation, self.module, self.graph)
            if resolved is not None:
                self.types[arg.arg] = resolved
            else:
                # A parameter is never resolvable as a direct function:
                # calling it is a dynamic site.
                self.opaque.add(arg.arg)

    def _enclosing_function_scopes(self) -> List[str]:
        """Qualname prefixes of enclosing *function* scopes, innermost
        first.  Class scopes are skipped: a bare name inside a method
        does not see sibling methods."""
        scopes: List[str] = []
        scope = self.fn.qualname
        module_name = self.module.module_name or ""
        while "." in scope and scope != module_name:
            if scope == self.fn.qualname or (
                scope in self.graph.functions and scope not in self.graph.classes
            ):
                scopes.append(scope)
            scope = scope.rsplit(".", 1)[0]
        return scopes

    # -- typing helpers -------------------------------------------------

    def _expr_class(self, node: ast.expr) -> Optional[str]:
        """Project class of ``node``'s value, when statically known."""
        if isinstance(node, ast.Name):
            return self.types.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_class(node.value)
            if base is not None:
                return self.graph.attr_type(base, node.attr)
            return None
        if isinstance(node, ast.Call):
            resolved = self._resolve_call_targets(node)
            if resolved is None:
                return None
            kind, targets, _ = resolved
            if kind == CONSTRUCTOR:
                # Constructor target list holds __init__/__post_init__;
                # the value's class is their enclosing class.
                for target in targets:
                    fn = self.graph.functions.get(target)
                    if fn is not None and fn.class_name is not None:
                        return fn.class_name
                return None
            classes = {
                self._return_class(t) for t in targets
            } - {None}
            if len(classes) == 1:
                return classes.pop()
        return None

    def _return_class(self, qualname: str) -> Optional[str]:
        fn = self.graph.functions.get(qualname)
        if fn is None or fn.return_annotation is None:
            return None
        owner_module = self._module_of(fn)
        if owner_module is None:
            return None
        return _annotation_class(fn.return_annotation, owner_module, self.graph)

    def _module_of(self, fn: FunctionNode) -> Optional[ModuleContext]:
        return self.graph.modules.get(fn.module)

    # -- resolution -----------------------------------------------------

    def _resolve_call_targets(
        self, call: ast.Call
    ) -> Optional[Tuple[str, Tuple[str, ...], Optional[str]]]:
        """Classify one call: ``(kind, targets, external_name)``.

        ``None`` means dynamic — nothing nameable to resolve.
        """
        func = call.func
        graph = self.graph
        module = self.module

        if isinstance(func, ast.Name):
            name = func.id
            if name in self.class_objects:
                return self._constructor(self.class_objects[name])
            if name in self.opaque:
                return None
            # Nested function in this or an enclosing function scope?
            for scope in self._enclosing_function_scopes():
                nested = f"{scope}.{name}"
                if nested in graph.functions:
                    return (DIRECT, (nested,), None)
            dotted = module.aliases.get(name, name)
            # Same-module function or class?  (Graphed modules always
            # have a dotted name; the guard keeps this total.)
            local = f"{module.module_name or ''}.{name}"
            if name not in module.aliases and module.module_name is not None:
                if local in graph.functions:
                    return (DIRECT, (local,), None)
                if local in graph.classes:
                    return self._constructor(local)
            resolved_fn = graph.functions.get(dotted)
            if resolved_fn is not None:
                return (DIRECT, (dotted,), None)
            resolved_cls = resolve_class_name(graph, dotted)
            if resolved_cls is not None and (
                name in module.aliases or dotted in graph.classes
            ):
                return self._constructor(resolved_cls)
            if name in module.aliases:
                return (EXTERNAL, (), dotted)
            if name in _BUILTIN_NAMES:
                return (EXTERNAL, (), name)
            return None

        if isinstance(func, ast.Attribute):
            method = func.attr
            # Fully dotted through a module alias first:
            # ``replay.age_file_system`` / ``obs.tracer_or_none``.
            dotted = module.dotted(func)
            if dotted is not None:
                if dotted in graph.functions:
                    return (DIRECT, (dotted,), None)
                resolved_cls = resolve_class_name(graph, dotted)
                if resolved_cls is not None:
                    return self._constructor(resolved_cls)
                # ``SomeClass.method`` referenced as an unbound function.
                head, _, tail = dotted.rpartition(".")
                cls = resolve_class_name(graph, head) if head else None
                if cls is not None:
                    candidates = graph.method_candidates(cls, tail)
                    if candidates:
                        return (TYPED, tuple(candidates), None)
            # Typed receiver.
            receiver_cls = self._expr_class(func.value)
            if receiver_cls is not None:
                candidates = graph.method_candidates(receiver_cls, method)
                if candidates:
                    kind = SELF if (
                        isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                    ) else TYPED
                    return (kind, tuple(candidates), None)
                # Known project class without this method: the method
                # comes from outside the project (dict, list, ...).
                return (EXTERNAL, (), dotted)
            # Name-based class-hierarchy fallback, bounded by the import
            # closure: an untyped receiver in this module can only be an
            # instance of a class some transitive import could supply.
            closure = graph.import_closure.get(self.fn.module, set())
            cha = [
                q
                for q in graph.methods_by_name.get(method, [])
                if graph.functions[q].module in closure
            ]
            if cha:
                return (CHA, tuple(sorted(cha)), None)
            return (EXTERNAL, (), dotted)

        return None

    def _constructor(
        self, class_qualname: str
    ) -> Tuple[str, Tuple[str, ...], Optional[str]]:
        info = self.graph.classes.get(class_qualname)
        targets: List[str] = []
        if info is not None:
            for hook in ("__init__", "__post_init__"):
                found = self.graph._lookup_inherited(  # noqa: SLF001
                    class_qualname, hook, set()
                )
                if found is not None:
                    targets.append(found)
        return (CONSTRUCTOR, tuple(targets), None)

    # -- the walk -------------------------------------------------------

    def run(self) -> List[CallSite]:
        node = self.fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return []
        for stmt in node.body:
            self._walk(stmt)
        return self.sites

    def _walk(self, node: ast.AST) -> None:
        # Nested defs are their own graph nodes; don't double-count.
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            self._note_assignment(node.targets[0], node.value)
        elif isinstance(node, ast.AnnAssign):
            ann = _annotation_class(node.annotation, self.module, self.graph)
            if isinstance(node.target, ast.Name) and ann is not None:
                self.types[node.target.id] = ann
        if isinstance(node, ast.Call):
            self._record(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _note_assignment(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        inferred = self._expr_class(value)
        if inferred is not None:
            self.types[target.id] = inferred
            self.opaque.discard(target.id)
        elif isinstance(value, (ast.Lambda, ast.Call, ast.Attribute, ast.Name)):
            # The name now holds something we cannot type; calling it is
            # dynamic unless it is a nested function reference.
            nested = f"{self.fn.qualname}.{getattr(value, 'id', '')}"
            if not (isinstance(value, ast.Name) and nested in self.graph.functions):
                self.types.pop(target.id, None)
                if isinstance(value, ast.Lambda):
                    self.opaque.add(target.id)

    def _record(self, call: ast.Call) -> None:
        resolved = self._resolve_call_targets(call)
        if resolved is None:
            kind: str = DYNAMIC
            targets: Tuple[str, ...] = ()
            external: Optional[str] = None
        else:
            kind, targets, external = resolved
        self.sites.append(
            CallSite(
                caller=self.fn.qualname,
                lineno=call.lineno,
                col=call.col_offset + 1,
                callee_text=_render_callee(call.func),
                kind=kind,
                targets=targets,
                external=external,
                node=call,
            )
        )



"""Shipped replint rules.

Importing this package registers every rule; each module holds one rule
and its full rationale.  Ids are stable forever — retired rules leave a
tombstone comment here rather than freeing the number.
"""

from __future__ import annotations

from repro.lint.rules import determinism as _determinism  # noqa: F401
from repro.lint.rules import telemetry as _telemetry  # noqa: F401
from repro.lint.rules import errors as _errors  # noqa: F401
from repro.lint.rules import pickling as _pickling  # noqa: F401
from repro.lint.rules import units as _units  # noqa: F401

# v2 project-scope rules (whole-program graph + dataflow).  R104 must
# import before R101, which reuses its set-iteration detector.
from repro.lint.rules import iteration as _iteration  # noqa: F401
from repro.lint.rules import graph_determinism as _graph_determinism  # noqa: F401
from repro.lint.rules import schema_registry as _schema_registry  # noqa: F401
from repro.lint.rules import units_flow as _units_flow  # noqa: F401

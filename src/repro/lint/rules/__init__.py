"""Shipped replint rules.

Importing this package registers every rule; each module holds one rule
and its full rationale.  Ids are stable forever — retired rules leave a
tombstone comment here rather than freeing the number.
"""

from __future__ import annotations

from repro.lint.rules import determinism as _determinism  # noqa: F401
from repro.lint.rules import telemetry as _telemetry  # noqa: F401
from repro.lint.rules import errors as _errors  # noqa: F401
from repro.lint.rules import pickling as _pickling  # noqa: F401
from repro.lint.rules import units as _units  # noqa: F401

"""R102 — schema registry: every ``family/vN`` tag lives in one place.

Every persisted artifact in this repo is stamped with a schema tag
(``repro.obs.manifest/v2``, ``repro.cache/v1``, ``replint.baseline/v2``
…) and every reader checks it.  Before :mod:`repro.schemas` existed,
those tags were string literals scattered across writers, readers, and
tests — so bumping a version meant grepping, and a writer/reader skew
(writer stamps v2, a reader still checks v1) was only caught at
runtime, in whichever code path happened to exercise the stale check.

With the central registry this rule can catch drift statically.  Over
the whole linted tree it flags:

* **undeclared tags** — a literal whose family is not declared in
  ``repro/schemas.py``: either a typo or a new artifact that skipped
  the registry;
* **version skew** — a literal whose family is declared but at a
  different version: the classic stale reader/test.  The registry is
  the single source of truth; the literal is wrong by definition;
* **hard-coded tags in library code** — a literal inside ``repro.*``
  even at the *correct* version: library code must import the constant
  (``schemas.MANIFEST``) so the next bump is one edit.  Test files may
  pin the current literal — asserting the on-disk bytes is the point
  of a schema test — but they skew like everything else;
* **orphaned declarations** — a registry family no code or test
  references at all (checked only on tree-wide runs where the
  registry module itself is part of the linted set).

Declarations are harvested from the linted tree's own
``repro/schemas.py`` (string-constant assignments), so fixture trees
in tests carry their own registries; when the registry module is not
part of the run, the installed :data:`repro.schemas.REGISTRY` is the
reference instead.

Docstrings are ignored — prose may name any tag it likes.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import ModuleContext, register

#: What a schema tag looks like.  Scoped to this repo's namespaces so
#: arbitrary "foo/v1" strings in unrelated code stay quiet.
_TAG_RE = re.compile(r"^(?:repro|replint)(?:\.[a-z0-9_]+)*/v(\d+)$")

#: The registry module, by dotted name.
_REGISTRY_MODULE = "repro.schemas"


def _split(tag: str) -> Tuple[str, int]:
    family, _, version = tag.rpartition("/v")
    return family, int(version)


def _docstring_nodes(tree: ast.Module) -> Set[int]:
    """ids of Constant nodes that are docstrings / bare string stmts."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            out.add(id(node.value))
    return out


def harvest_declarations(
    module: ModuleContext,
) -> Dict[str, Tuple[str, int, ast.AST]]:
    """``constant name -> (family, version, node)`` from the registry
    module's top-level string assignments."""
    out: Dict[str, Tuple[str, int, ast.AST]] = {}
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if (
            value is not None
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and _TAG_RE.match(value.value)
        ):
            for target in targets:
                if isinstance(target, ast.Name):
                    family, version = _split(value.value)
                    out[target.id] = (family, version, stmt)
    return out


@register
class SchemaRegistryRule(ProjectRule):
    __doc__ = __doc__

    rule_id = "R102"
    name = "schema-registry"
    summary = (
        "schema tags must be declared in repro/schemas.py; library code "
        "imports the constant, and no literal may skew from the registry"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        registry_module = project.module_by_name(_REGISTRY_MODULE)
        declarations: Dict[str, Tuple[str, int, Optional[ast.AST]]] = {}
        if registry_module is not None:
            for name, decl in harvest_declarations(registry_module).items():
                declarations[name] = decl
        else:
            from repro import schemas

            for name, tag in schemas.REGISTRY.items():
                family, version = _split(tag)
                declarations[name] = (family, version, None)
        declared: Dict[str, int] = {
            family: version for family, version, _node in declarations.values()
        }

        const_families: Dict[str, str] = {
            name: family
            for name, (family, _version, _node) in declarations.items()
        }
        used_families: Set[str] = set()
        for module in project.modules:
            if module.module_name == _REGISTRY_MODULE:
                continue
            yield from self._check_module(
                module, declared, const_families, used_families
            )

        # Orphans: only judged tree-wide, when the registry itself is in
        # the linted set alongside the code that should use it.
        if registry_module is not None and len(project.modules) > 1:
            for name, (family, _version, node) in sorted(declarations.items()):
                if family not in used_families and node is not None:
                    yield registry_module.finding(
                        self,
                        node,
                        f"schema family '{family}' (constant {name}) is "
                        f"declared but never referenced; delete it or keep "
                        f"a reader for the old artifacts",
                    )

    def _check_module(
        self,
        module: ModuleContext,
        declared: Dict[str, int],
        const_families: Dict[str, str],
        used_families: Set[str],
    ) -> Iterator[Finding]:
        in_library = module.module_name is not None
        docstrings = _docstring_nodes(module.tree)

        # Constant references (schemas.MANIFEST et al.) count as usage.
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Attribute, ast.Name)):
                dotted = module.dotted(node)
                if dotted is not None and dotted.startswith(
                    _REGISTRY_MODULE + "."
                ):
                    const = dotted[len(_REGISTRY_MODULE) + 1 :]
                    family = const_families.get(const)
                    if family is not None:
                        used_families.add(family)

        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _TAG_RE.match(node.value)
            ):
                continue
            if id(node) in docstrings:
                continue
            family, version = _split(node.value)
            used_families.add(family)
            if family not in declared:
                yield module.finding(
                    self,
                    node,
                    f"undeclared schema tag '{node.value}'; declare the "
                    f"family in repro/schemas.py and import the constant",
                )
            elif version != declared[family]:
                yield module.finding(
                    self,
                    node,
                    f"schema version skew: '{node.value}' but the registry "
                    f"declares '{family}/v{declared[family]}'",
                )
            elif in_library:
                yield module.finding(
                    self,
                    node,
                    f"hard-coded schema tag '{node.value}' in library code; "
                    f"import the constant from repro.schemas instead",
                )

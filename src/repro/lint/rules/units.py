"""R005 — unit hygiene: don't mix frag/block/sector/byte quantities.

The simulator juggles four address spaces — bytes, 512-byte sectors,
1 KB fragments, 8 KB blocks — and the conversion bugs between them are
the classic FFS-reproduction failure mode: an offset in frags added to
a length in blocks type-checks, runs, and quietly corrupts every
downstream layout score.

The repo's convention is that unit-carrying identifiers advertise their
unit with a suffix (``start_frag``, ``len_blocks``, ``offset_bytes``)
and conversions go through :mod:`repro.units`
(``bytes_to_frags``, ``blocks_to_bytes``, ...).  This rule flags ``+``
and ``-`` arithmetic (including augmented assignment) whose two
operands are plain identifiers carrying *conflicting* unit suffixes::

    pos = start_frag + len_blocks          # R005: frag + block

    pos = start_frag + frags_per_block * len_blocks   # ok: converted

Deliberately narrow, to stay quiet on correct code:

* only ``+``/``-`` are checked — multiplication and division are how
  conversions are *written*, so they are always allowed;
* only plain names and attribute accesses count — subscripts like
  ``free_in_block[b] - nfrags`` are containers indexed by one unit
  holding another, which is fine;
* the suffix must be a real suffix (``_frag``/``_frags``, ``_block``/
  ``_blocks``, ``_sector``/``_sectors``, ``_byte``/``_bytes``);
  ``nfrags`` has no underscore and does not participate.

When the mix is intentional, say why at the line::

    gap = next_block * frags_per_block - cursor_frag  # replint: disable=R005  (...)
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

#: suffix -> canonical unit
_UNIT_SUFFIXES = {
    "frag": "frag",
    "frags": "frag",
    "block": "block",
    "blocks": "block",
    "sector": "sector",
    "sectors": "sector",
    "byte": "byte",
    "bytes": "byte",
}


def _unit_of(node: ast.AST) -> Optional[str]:
    """The unit a plain identifier advertises, or ``None``.

    Only ``Name`` and ``Attribute`` nodes participate: a subscript or a
    call result has no identifier-level unit claim to enforce.
    """
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    else:
        return None
    if "_" not in ident:
        return None
    suffix = ident.rsplit("_", 1)[1].lower()
    return _UNIT_SUFFIXES.get(suffix)


def _conflict(left: ast.AST, right: ast.AST) -> Optional[Tuple[str, str]]:
    lu, ru = _unit_of(left), _unit_of(right)
    if lu is not None and ru is not None and lu != ru:
        return (lu, ru)
    return None


@register
class UnitHygieneRule(Rule):
    __doc__ = __doc__

    rule_id = "R005"
    name = "unit-hygiene"
    summary = (
        "no +/- arithmetic between identifiers with conflicting "
        "_frag/_block/_sector/_byte suffixes; convert via repro.units"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                conflict = _conflict(node.left, node.right)
                if conflict:
                    yield self._flag(module, node, *conflict)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                conflict = _conflict(node.target, node.value)
                if conflict:
                    yield self._flag(module, node, *conflict)

    def _flag(
        self, module: ModuleContext, node: ast.AST, left_unit: str, right_unit: str
    ) -> Finding:
        return module.finding(
            self,
            node,
            f"additive arithmetic mixes {left_unit}s with {right_unit}s; "
            f"convert explicitly via repro.units before combining",
        )

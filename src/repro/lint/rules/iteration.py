"""R104 — iteration order: never iterate a set where order can matter.

Python sets iterate in hash order, and for strings the hash is salted
per process (``PYTHONHASHSEED``): two runs of the *same* binary on the
*same* inputs can walk a set in different orders.  Any set iteration
whose order reaches an output — a payload list, an event row, a cache
key, a rendered table — therefore breaks the byte-identical guarantee
in the least reproducible way possible: only across process boundaries,
only sometimes.

This rule flags iteration over expressions that are *statically known
to be sets* (set literals, ``set()``/``frozenset()`` calls, set
comprehensions, unions/intersections of known sets, and locals only
ever assigned such values) when the iteration order can escape:

* ``for x in some_set:`` statements;
* list/dict comprehensions and generator expressions drawing from a
  set (a *set* comprehension is fine — the result is unordered again);
* ``list(s)`` / ``tuple(s)`` / ``enumerate(s)`` / ``iter(s)`` /
  ``sep.join(s)`` conversions.

Order-insensitive consumers are allowed: ``sorted(s)``, ``sum`` /
``min`` / ``max`` / ``len`` / ``any`` / ``all``, and rebuilding a
``set`` / ``frozenset``.  The fix is almost always ``sorted(...)`` at
the iteration site::

    for pair in sorted(tracked_pairs):   # deterministic
        ...

:mod:`repro.obs` is **not** exempt (unlike R001): telemetry may record
wall-clock time, but the *rows it emits* still diff across runs, and a
nondeterministically ordered event stream defeats run diffing.

R101 reuses this module's detector: an unsorted set iteration inside a
function reachable from cache-key construction or replay is escalated
to a transitive-determinism finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple, Union

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

#: Builtins whose call result is a set.
_SET_MAKERS = {"set", "frozenset"}

#: Set methods returning another set.
_SET_COMBINATORS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}

#: Calls that consume an iterable without exposing its order.
_ORDER_INSENSITIVE = {
    "sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset",
}

#: Calls that materialize an iterable *in iteration order*.
_ORDER_EXPOSING = {"list", "tuple", "enumerate", "iter"}

_ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _scope_statements(scope: _ScopeNode) -> Iterator[ast.AST]:
    """Every node in ``scope``, without descending into nested defs
    (each def is its own scope with its own locals)."""
    stack: List[ast.AST] = list(scope.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.AST, known: Set[str]) -> bool:
    """Is ``node`` statically a set?  ``known`` holds set-typed locals."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in known
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_MAKERS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_COMBINATORS
            and _is_set_expr(func.value, known)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, known) or _is_set_expr(node.right, known)
    return False


def _set_locals(scope: _ScopeNode) -> Set[str]:
    """Locals that are sets on every assignment in ``scope``.

    Classification is flow-insensitive (a name is a set only if *all*
    its assignments produce sets) and iterated to a fixed point so
    ``s = set(); s = s | other`` still classifies.
    """
    assigns: Dict[str, List[ast.AST]] = {}
    for node in _scope_statements(scope):
        targets: List[ast.expr] = []
        value: ast.AST = node
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            # s |= other keeps a set a set; any other augassign on a
            # tracked name is recorded as a non-set write.
            targets, value = [node.target], node.value
            if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
                value = ast.Set(elts=[])  # stands in for "still a set"
        for target in targets:
            if isinstance(target, ast.Name):
                assigns.setdefault(target.id, []).append(value)
    known: Set[str] = set()
    while True:
        grown = {
            name
            for name, values in assigns.items()
            if all(_is_set_expr(v, known | {name}) for v in values)
        }
        if grown == known:
            return known
        known = grown


def unsorted_set_iterations(
    scope: _ScopeNode,
) -> List[Tuple[ast.AST, str]]:
    """Order-escaping set iterations in one scope.

    Returns ``(anchor node, description)`` pairs, in source order.
    Shared with R101, which escalates these sites on protected paths.
    """
    known = _set_locals(scope)
    blessed: Set[int] = set()
    out: List[Tuple[ast.AST, str]] = []
    nodes = sorted(
        _scope_statements(scope),
        key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
    )
    # First pass: bless arguments of order-insensitive consumers, and
    # the generators feeding them (sum(x for x in s) is order-free).
    for node in nodes:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE
        ):
            for arg in node.args:
                blessed.add(id(arg))
                if isinstance(arg, ast.GeneratorExp):
                    for gen in arg.generators:
                        blessed.add(id(gen.iter))
    for node in nodes:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter, known) and id(node.iter) not in blessed:
                out.append((node, "for-loop over a set"))
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if id(node) in blessed:
                continue
            for gen in node.generators:
                if _is_set_expr(gen.iter, known) and id(gen.iter) not in blessed:
                    out.append((node, "comprehension over a set"))
                    break
        elif isinstance(node, ast.Call):
            func = node.func
            exposing = (
                isinstance(func, ast.Name) and func.id in _ORDER_EXPOSING
            ) or (isinstance(func, ast.Attribute) and func.attr == "join")
            if exposing and node.args and _is_set_expr(node.args[0], known):
                name = func.id if isinstance(func, ast.Name) else "join"
                out.append((node, f"{name}() over a set"))
    return out


def iter_scopes(tree: ast.Module) -> Iterator[_ScopeNode]:
    """The module scope plus every (possibly nested) function scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class IterationOrderRule(Rule):
    __doc__ = __doc__

    rule_id = "R104"
    name = "iteration-order"
    summary = (
        "no iteration over sets where order can escape (loops, "
        "comprehensions, list()/join()); wrap the set in sorted(...)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for scope in iter_scopes(module.tree):
            for node, what in unsorted_set_iterations(scope):
                yield module.finding(
                    self,
                    node,
                    f"{what}: set iteration order is not deterministic "
                    f"across processes; wrap in sorted(...)",
                )

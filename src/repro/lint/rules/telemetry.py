"""R002 — telemetry purity: obs access only via guarded ``*_or_none()``.

The telemetry-off path is guaranteed byte-identical to the seed tree:
with no ``--metrics/--trace/--events/--profile`` flag, a run allocates
no registries, takes no locks, and emits exactly the seed's stdout.
That guarantee holds because library code touches :mod:`repro.obs`
exclusively through the nullable facades::

    m = obs.metrics_or_none()
    if m is not None:
        m.counter("ffs.alloc.calls").inc()

The null-object forms — ``obs.metrics()``, ``obs.tracer()``,
``obs.events()``, ``obs.profiler()`` — look harmless but build and
discard throwaway objects on the disabled path (and, worse, make it
impossible to grep for unguarded telemetry).  This rule flags any call
to those constructors from ``repro.*`` modules outside :mod:`repro.obs`
itself and :mod:`repro.cli` (the CLI owns session setup and legitimately
calls ``obs.enable``/``obs.session``).

``obs.enable`` / ``obs.disable`` / ``obs.session`` are not flagged:
starting or scoping a telemetry session is explicit opt-in, which is
the opposite of a purity leak (the parallel workers use ``obs.session``
to re-home their metrics, by design).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

#: Null-object facade constructors that bypass the guarded pattern.
_BARE_FACADES = {
    "repro.obs.metrics",
    "repro.obs.tracer",
    "repro.obs.events",
    "repro.obs.profiler",
}

#: Packages/modules allowed to touch obs directly.
_EXEMPT_PACKAGES = ("repro.obs", "repro.cli")


@register
class TelemetryPurityRule(Rule):
    __doc__ = __doc__

    rule_id = "R002"
    name = "telemetry-purity"
    summary = (
        "library code reaches repro.obs only through *_or_none() facades, "
        "guarded before use (protects the byte-identical-off guarantee)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_package("repro"):
            # Only repro library code carries the purity contract;
            # fixture snippets opt in via a fake repro path.
            return
        if any(module.in_package(pkg) for pkg in _EXEMPT_PACKAGES):
            return

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted(node.func)
            if dotted is None:
                continue
            # Normalise both `from repro import obs; obs.metrics()` and
            # `from repro.obs import metrics; metrics()` spellings.
            if dotted in _BARE_FACADES or f"repro.{dotted}" in _BARE_FACADES:
                facade = dotted.rsplit(".", 1)[-1]
                yield module.finding(
                    self,
                    node,
                    f"bare 'obs.{facade}()' in library code; use "
                    f"'obs.{facade}_or_none()' and guard with 'is not None' "
                    f"so the telemetry-off path stays byte-identical",
                )

"""R101 — transitive determinism: protected paths are *proven* clean.

R001 checks each module in isolation; it can say "this file samples no
clock" but not "nothing this function *calls* samples a clock".  R101
closes that gap with the whole-program call graph: every function
reachable from the determinism-critical roots must be provably free of
nondeterminism, transitively.

**Protected roots** — the three places where nondeterminism silently
corrupts recorded results rather than merely changing output:

* ``repro.cache.keys`` — cache-key construction.  A tainted key means
  a stale artifact is served as if parameters matched.
* ``repro.aging.replay`` — the aging engine.  A tainted replay means
  the "same seed, same file system" contract is a lie.
* ``repro.faults.plan`` — fault-plan sampling.  A tainted plan means a
  crash scenario cannot be re-run.

**Taint sources** inside any function reachable from those roots:

* the R001 clock/entropy calls (``time.time``, ``os.urandom``,
  ``datetime.now`` …) and calls into ``random``/``uuid``/``secrets``;
* environment reads (``os.getenv``, ``os.environ.get``) — output would
  depend on ambient process state, not ``(params, seed)``;
* unsorted set iteration whose order escapes (R104's detector);
* **dynamic call sites** — a call through a value the graph cannot
  name.  These are reported as *unprovable*, not assumed clean: on a
  protected path, "I can't see the callee" is itself the finding.

``repro.rng`` and ``repro.obs`` are trust barriers (as in R001): edges
stop there, their bodies are not scanned.

Findings anchor at the offending call/iteration site — so a line
pragma at the site works — and the message carries the call chain that
makes the site protected, e.g.::

    R101 call to 'time.time' taints a determinism-protected path:
    repro.aging.replay.age_file_system -> repro.aging.replay.AgingReplayer.replay -> <site>

A site already waived for R001 (taint calls) or R104 (set iteration)
is honoured: the human-reviewed reason at the line covers the
transitive claim too.  A dynamic site that is genuinely fine (a
callback table of pure functions) is waived with its own pragma::

    return _POLICIES[name](...)  # replint: disable=R101  (policy table holds only pure allocators)
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.graph import DYNAMIC, CallGraph
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import ModuleContext, register
from repro.lint.rules.determinism import (
    _BANNED_CALLS,
    _BANNED_MODULES,
    _EXEMPT_PACKAGES,
    _ONE_ARG_SAMPLERS,
    _ZERO_ARG_SAMPLERS,
)
from repro.lint.rules.iteration import unsorted_set_iterations

#: Module prefixes whose functions are determinism-protected roots.
PROTECTED_ROOTS = (
    "repro.cache.keys",
    "repro.aging.replay",
    "repro.faults.plan",
)

#: Environment reads: ambient process state, not (params, seed).
_ENV_CALLS = {"os.getenv", "os.environ.get"}


def _is_exempt(qualname_or_module: str) -> bool:
    return any(
        qualname_or_module == pkg or qualname_or_module.startswith(pkg + ".")
        for pkg in _EXEMPT_PACKAGES
    )


def _taints(dotted: str, nargs: int) -> bool:
    """Does calling ``dotted`` with ``nargs`` args sample nondeterminism?

    The clock/entropy predicate is R001's, extended with environment
    reads and any call into a banned module (``random.random`` …).
    """
    if dotted in _BANNED_CALLS or dotted in _ENV_CALLS:
        return True
    if dotted in _ZERO_ARG_SAMPLERS and nargs == 0:
        return True
    if dotted in _ONE_ARG_SAMPLERS and nargs <= 1:
        return True
    return dotted.split(".", 1)[0] in _BANNED_MODULES


def protected_reachable(
    graph: CallGraph,
) -> Tuple[Dict[str, Optional[str]], List[str]]:
    """BFS from the protected roots over resolved edges.

    Returns ``(parents, order)``: ``parents`` maps each reachable
    function to its BFS predecessor (roots map to ``None``), ``order``
    is the deterministic discovery order.  Exempt (barrier) functions
    are recorded as reachable but not expanded.
    """
    roots = sorted(
        q
        for q in graph.functions
        if any(q.startswith(p + ".") for p in PROTECTED_ROOTS)
    )
    parents: Dict[str, Optional[str]] = {r: None for r in roots}
    order: List[str] = []
    frontier = roots
    while frontier:
        nxt: Set[str] = set()
        for name in frontier:
            order.append(name)
            if _is_exempt(graph.functions[name].module):
                continue
            for site in graph.sites(name):
                for target in site.targets:
                    if target not in parents and target in graph.functions:
                        parents[target] = name
                        nxt.add(target)
        frontier = sorted(nxt)
    return parents, order


def trace_to_root(parents: Dict[str, Optional[str]], qualname: str) -> List[str]:
    """The root-to-function call chain recorded by the BFS."""
    chain: List[str] = []
    cursor: Optional[str] = qualname
    while cursor is not None:
        chain.append(cursor)
        cursor = parents.get(cursor)
    return list(reversed(chain))


@register
class TransitiveDeterminismRule(ProjectRule):
    __doc__ = __doc__

    rule_id = "R101"
    name = "transitive-determinism"
    summary = (
        "every function reachable from cache-key construction, aging "
        "replay, and fault-plan sampling must be provably free of "
        "clock/entropy/env/set-order nondeterminism"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        parents, order = protected_reachable(graph)
        for qualname in order:
            fn = graph.functions[qualname]
            if _is_exempt(fn.module):
                continue
            module = project.module_by_name(fn.module)
            if module is None:
                continue
            trace = " -> ".join(trace_to_root(parents, qualname))
            yield from self._scan_function(project, module, qualname, trace)

    # -- per-function scanning -----------------------------------------

    def _scan_function(
        self,
        project: ProjectContext,
        module: ModuleContext,
        qualname: str,
        trace: str,
    ) -> Iterator[Finding]:
        graph = project.graph
        fn = graph.functions[qualname]
        node = fn.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return

        # Taint calls, skipping nested defs (their own graph nodes).
        for expr in self._own_nodes(node):
            if isinstance(expr, ast.Call):
                dotted = module.dotted(expr.func)
                nargs = len(expr.args) + len(expr.keywords)
                if dotted is not None and _taints(dotted, nargs):
                    if self._waived(project, module, expr.lineno, "R001"):
                        continue
                    yield module.finding(
                        self,
                        expr,
                        f"call to '{dotted}' taints a determinism-protected "
                        f"path: {trace}",
                    )

        # Unsorted set iteration (R104's detector, escalated).
        for site_node, what in unsorted_set_iterations(node):
            line = getattr(site_node, "lineno", node.lineno)
            if self._waived(project, module, line, "R104"):
                continue
            yield module.finding(
                self,
                site_node,
                f"{what} inside '{qualname}' has nondeterministic order "
                f"on a determinism-protected path: {trace}",
            )

        # Dynamic call sites: unprovable, which on this path is a finding.
        for site in graph.sites(qualname):
            if site.kind != DYNAMIC:
                continue
            anchor = site.node if site.node is not None else node
            yield module.finding(
                self,
                anchor,
                f"dynamic call '{site.callee_text}' cannot be proven "
                f"deterministic on a protected path: {trace}",
            )

    @staticmethod
    def _own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body without entering nested defs/classes."""
        stack = list(ast.iter_child_nodes(fn_node))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _waived(
        project: ProjectContext, module: ModuleContext, line: int, rule_id: str
    ) -> bool:
        """Has a human already justified this site for the seed rule?"""
        pragmas = project.pragmas.get(module.rel_path)
        if pragmas is None:
            return False
        probe = Finding(
            path=module.rel_path, line=line, col=1, rule_id=rule_id, message=""
        )
        return pragmas.suppresses(probe)

"""R003 — error discipline: library failures are ``repro.errors`` types.

Callers (the CLI, the experiment runner, tests) catch
:class:`repro.errors.SimulationError` subclasses to distinguish "the
simulation rejected this input" from "the code is broken".  A bare
``raise Exception(...)`` or a validation ``assert`` destroys that
distinction: the first is uncatchable without catching everything, and
the second silently vanishes under ``python -O``.

Flagged in ``repro.*`` library code:

* ``raise Exception(...)`` / ``raise BaseException(...)`` /
  ``raise RuntimeError(...)`` / ``raise AssertionError(...)``;
* any ``assert`` statement — invariants worth checking in production
  code deserve a real exception (``ConsistencyError`` for corrupted
  state, ``ValueError``/``WorkloadError`` for bad input), and
  debug-only asserts belong in tests.

Compliant::

    from repro.errors import ConsistencyError
    if cg.free_frags != recount:
        raise ConsistencyError(f"cg{cg.index}: free_frags {cg.free_frags} != recount {recount}")

Test code is exempt (pytest's ``assert`` is the point there); so is any
file outside a ``repro`` package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

#: Exception constructors too generic for library code.
_GENERIC_EXCEPTIONS = {"Exception", "BaseException", "RuntimeError", "AssertionError"}


@register
class ErrorDisciplineRule(Rule):
    __doc__ = __doc__

    rule_id = "R003"
    name = "error-discipline"
    summary = (
        "no bare raise Exception/RuntimeError or assert statements in "
        "library code; raise repro.errors types"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_package("repro"):
            return

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield module.finding(
                    self,
                    node,
                    "assert statement in library code vanishes under "
                    "python -O; raise a repro.errors type instead",
                )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                # `raise Exception("...")` or re-raise-style `raise Exception`
                name = None
                if isinstance(exc, ast.Call):
                    name = module.dotted(exc.func)
                elif isinstance(exc, (ast.Name, ast.Attribute)):
                    name = module.dotted(exc)
                if name in _GENERIC_EXCEPTIONS:
                    yield module.finding(
                        self,
                        node,
                        f"raise of generic '{name}' in library code; "
                        f"use a repro.errors type so callers can catch "
                        f"simulation failures precisely",
                    )

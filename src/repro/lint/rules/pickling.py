"""R004 — parallel-pickle safety: executor tasks must be module-level.

``repro.parallel`` fans experiments out over a
``ProcessPoolExecutor``.  Everything submitted crosses a process
boundary by pickle, and pickle serialises functions *by qualified
name*: a lambda or a closure defined inside another function has no
importable name, so the submit call raises ``PicklingError`` — but only
at runtime, only with ``--jobs > 1``, which is exactly the path local
quick tests skip.

This rule inspects ``pool.submit(fn, ...)`` and ``pool.map(fn, ...)``
calls and flags a first argument that is:

* a ``lambda`` expression,
* a name bound to a ``def`` nested inside another function or class
  method (a closure — unpicklable), or
* a bound method (``self.fn`` / ``obj.fn`` attribute access) — these
  drag the whole instance through pickle and usually fail on
  non-trivial objects.

To avoid flagging unrelated ``.map()`` calls (e.g. on a dict-like), the
receiver must look like an executor: the module imports
``concurrent.futures`` or ``multiprocessing``, or the receiver's name
contains ``pool`` or ``executor``.

Compliant::

    def _warm_aging_task(params, seed):  # module level: picklable by name
        ...

    pool.submit(_warm_aging_task, params, seed)
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

_EXECUTOR_HINTS = ("pool", "executor")


def _module_imports_executors(module: ModuleContext) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name.split(".")[0] in ("concurrent", "multiprocessing")
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if top in ("concurrent", "multiprocessing"):
                return True
    return False


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of `def`s that are NOT at module level (closures/methods)."""
    module_level = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    all_defs = {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return all_defs - module_level


def _receiver_name(func: ast.Attribute) -> str:
    """Best-effort textual name of the receiver (`pool` in `pool.submit`)."""
    value = func.value
    parts = []
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
    return ".".join(reversed(parts)).lower()


@register
class PickleSafetyRule(Rule):
    __doc__ = __doc__

    rule_id = "R004"
    name = "parallel-pickle-safety"
    summary = (
        "callables handed to executor submit()/map() must be module-level "
        "functions, not lambdas, closures, or bound methods"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports_executors = _module_imports_executors(module)
        nested = _nested_function_names(module.tree)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in ("submit", "map"):
                continue
            receiver = _receiver_name(func)
            looks_like_executor = imports_executors or any(
                hint in receiver for hint in _EXECUTOR_HINTS
            )
            if not looks_like_executor or not node.args:
                continue
            task = node.args[0]
            if isinstance(task, ast.Lambda):
                yield module.finding(
                    self,
                    node,
                    f"lambda passed to {receiver or 'executor'}.{func.attr}(); "
                    f"lambdas cannot be pickled across the process boundary — "
                    f"define a module-level function",
                )
            elif isinstance(task, ast.Name) and task.id in nested:
                yield module.finding(
                    self,
                    node,
                    f"nested function '{task.id}' passed to "
                    f"{receiver or 'executor'}.{func.attr}(); closures cannot "
                    f"be pickled — hoist it to module level",
                )
            elif isinstance(task, ast.Attribute):
                # Module-qualified functions (`mod.fn` where `mod` was
                # imported) are picklable by name; anything else rooted
                # at a plain name is an object attribute — a bound method.
                root = task.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name) and root.id not in module.aliases:
                    yield module.finding(
                        self,
                        node,
                        f"bound method passed to "
                        f"{receiver or 'executor'}.{func.attr}(); pickling it "
                        f"drags the whole instance across the process boundary "
                        f"— use a module-level function taking the data it needs",
                    )

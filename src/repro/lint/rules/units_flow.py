"""R103 — interprocedural unit hygiene: units survive call boundaries.

R005 catches ``start_frag + len_blocks`` inside one expression.  It is
blind to the same bug split across a call: a function that *returns*
frags assigned to a variable named ``_blocks``, or a block count passed
to a parameter named ``nfrags_needed``.  Those are exactly the bugs
that survive review, because each side reads correctly in isolation.

R103 closes the loop with the call graph and a fixed-point pass:

1. **Return units.**  Each function's return unit is inferred from its
   ``return`` expressions — identifier suffixes (``_frag``/``_block``/
   ``_sector``/``_byte``, as in R005), additive arithmetic (which
   preserves a unit), and calls to already-solved functions.  The
   solver iterates to a fixed point, so a chain like ``return
   helper(x)`` → ``return base_frag + pad`` types the whole chain.
   Multiplication and division erase the unit: that is how conversions
   are written.  A function whose returns disagree stays untyped.

2. **Argument checking.**  At every resolved call site, a positional
   or keyword argument with a known unit is checked against the
   callee's parameter *name*: passing ``len_blocks`` to a parameter
   named ``nfrags`` is a finding.  Only precise edges are checked
   (direct calls, constructors, typed/self dispatch) — the name-based
   CHA fallback is too coarse to accuse anyone with.

3. **Assignment checking.**  A call whose solved return unit conflicts
   with the suffix of the name it is assigned to is a finding.

When the mix is intentional (a raw count reused across spaces), waive
at the line with a reason, exactly as for R005::

    nframes = free_frags(cg)  # replint: disable=R103  (frames == frags here)
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.dataflow import FixedPointError, solve
from repro.lint.findings import Finding
from repro.lint.graph import CallGraph, CallSite
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import ModuleContext, register
from repro.lint.rules.units import _UNIT_SUFFIXES

#: Site kinds precise enough to check arguments against — everything
#: but CHA (name-based guessing), EXTERNAL, and DYNAMIC.
_PRECISE_KINDS = frozenset({"direct", "constructor", "self", "typed"})


def _ident_unit(ident: str) -> Optional[str]:
    """Unit advertised by an identifier's ``_frag``-style suffix."""
    if "_" not in ident:
        return None
    return _UNIT_SUFFIXES.get(ident.rsplit("_", 1)[1].lower())


def _node_unit(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return _ident_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _ident_unit(node.attr)
    return None


def _sites_by_node(graph: CallGraph, qualname: str) -> Dict[int, CallSite]:
    return {
        id(site.node): site
        for site in graph.sites(qualname)
        if site.node is not None
    }


def _expr_unit(
    node: ast.AST,
    sitemap: Dict[int, CallSite],
    facts: Dict[str, Optional[str]],
) -> Optional[str]:
    """Unit of an expression, or ``None`` when unknown/erased."""
    direct = _node_unit(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        units = {
            _expr_unit(node.left, sitemap, facts),
            _expr_unit(node.right, sitemap, facts),
        } - {None}
        return units.pop() if len(units) == 1 else None
    if isinstance(node, ast.UnaryOp):
        return _expr_unit(node.operand, sitemap, facts)
    if isinstance(node, ast.IfExp):
        units = {
            _expr_unit(node.body, sitemap, facts),
            _expr_unit(node.orelse, sitemap, facts),
        } - {None}
        return units.pop() if len(units) == 1 else None
    if isinstance(node, ast.Call):
        site = sitemap.get(id(node))
        if site is not None and site.targets and site.kind in _PRECISE_KINDS:
            units = {facts.get(t) for t in site.targets} - {None}
            if len(units) == 1:
                return units.pop()
    return None


def _own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Function-body walk that skips nested defs (their own nodes)."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def solve_return_units(graph: CallGraph) -> Dict[str, Optional[str]]:
    """Fixed-point return-unit facts for every project function."""
    sitemaps = {q: _sites_by_node(graph, q) for q in graph.functions}

    def initial(_qualname: str) -> Optional[str]:
        return None

    def transfer(
        qualname: str, facts: Dict[str, Optional[str]]
    ) -> Optional[str]:
        fn = graph.functions[qualname]
        if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        units: Set[Optional[str]] = set()
        saw_return = False
        for node in _own_nodes(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                saw_return = True
                units.add(_expr_unit(node.value, sitemaps[qualname], facts))
        if not saw_return:
            return None
        known = units - {None}
        # Every return must agree; a single untyped return keeps the
        # typed ones (the common "early None" guard shape).
        return known.pop() if len(known) == 1 else None

    try:
        return solve(graph, initial, transfer)
    except FixedPointError:  # pragma: no cover - defensive
        return {q: None for q in graph.functions}


@register
class UnitFlowRule(ProjectRule):
    __doc__ = __doc__

    rule_id = "R103"
    name = "unit-flow"
    summary = (
        "unit suffixes must agree across call boundaries: arguments "
        "match parameter names, returned units match assigned names"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.graph
        returns = solve_return_units(graph)
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            module = project.module_by_name(fn.module)
            if module is None:
                continue
            if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            sitemap = _sites_by_node(graph, qualname)
            yield from self._check_arguments(module, graph, sitemap, returns)
            yield from self._check_assignments(
                module, fn.node, sitemap, returns
            )

    # -- argument units vs. parameter names ----------------------------

    def _check_arguments(
        self,
        module: ModuleContext,
        graph: CallGraph,
        sitemap: Dict[int, CallSite],
        returns: Dict[str, Optional[str]],
    ) -> Iterator[Finding]:
        for site in sitemap.values():
            if site.kind not in _PRECISE_KINDS or not site.targets:
                continue
            call = site.node
            if call is None:
                continue
            for index, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred):
                    break
                arg_unit = _expr_unit(arg, sitemap, returns)
                if arg_unit is None:
                    continue
                param = self._param_at(graph, site, index)
                if param is None:
                    continue
                param_unit = _ident_unit(param)
                if param_unit is not None and param_unit != arg_unit:
                    yield module.finding(
                        self,
                        arg,
                        f"argument carries {arg_unit}s but parameter "
                        f"'{param}' of {site.callee_text} expects "
                        f"{param_unit}s; convert via repro.units",
                    )
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                arg_unit = _expr_unit(keyword.value, sitemap, returns)
                param_unit = _ident_unit(keyword.arg)
                if (
                    arg_unit is not None
                    and param_unit is not None
                    and param_unit != arg_unit
                    and self._any_target_has_param(graph, site, keyword.arg)
                ):
                    yield module.finding(
                        self,
                        keyword.value,
                        f"keyword argument '{keyword.arg}' expects "
                        f"{param_unit}s but the value carries {arg_unit}s; "
                        f"convert via repro.units",
                    )

    @staticmethod
    def _param_at(
        graph: CallGraph, site: CallSite, index: int
    ) -> Optional[str]:
        """The parameter name at positional ``index``, when every
        resolved target agrees on it (else ``None``: too ambiguous)."""
        names: Set[str] = set()
        for target in site.targets:
            fn = graph.functions.get(target)
            if fn is None:
                return None
            params: Tuple[str, ...] = fn.params
            if params and params[0] in ("self", "cls"):
                params = params[1:]
            if index >= len(params):
                return None
            names.add(params[index])
        return names.pop() if len(names) == 1 else None

    @staticmethod
    def _any_target_has_param(
        graph: CallGraph, site: CallSite, name: str
    ) -> bool:
        for target in site.targets:
            fn = graph.functions.get(target)
            if fn is not None and name in fn.params:
                return True
        return False

    # -- returned units vs. assigned names -----------------------------

    def _check_assignments(
        self,
        module: ModuleContext,
        fn_node: ast.AST,
        sitemap: Dict[int, CallSite],
        returns: Dict[str, Optional[str]],
    ) -> Iterator[Finding]:
        for node in _own_nodes(fn_node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not isinstance(value, ast.Call):
                continue
            site = sitemap.get(id(value))
            if site is None or site.kind not in _PRECISE_KINDS:
                continue
            ret_unit = _expr_unit(value, sitemap, returns)
            if ret_unit is None:
                continue
            for target in targets:
                target_unit = _node_unit(target)
                if target_unit is not None and target_unit != ret_unit:
                    yield module.finding(
                        self,
                        node,
                        f"{site.callee_text}() returns {ret_unit}s but is "
                        f"assigned to a name carrying {target_unit}s; "
                        f"convert via repro.units",
                    )

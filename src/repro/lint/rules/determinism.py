"""R001 — determinism: all nondeterminism flows through ``repro.rng``.

The aged-FS cache keys, the serial/parallel stdout equivalence, and the
paper-shape regression tests all assume a run is a pure function of
``(code, parameters, master seed)``.  One stray ``random.random()`` or
``time.time()`` in simulation code silently breaks every one of those
guarantees — and nothing fails until a cache entry goes stale or a
parallel run diverges.

This rule bans, outside :mod:`repro.rng` (the one legal home for
``random``) and :mod:`repro.obs` (telemetry records wall-clock by
design and is excluded from the byte-identical guarantee):

* importing ``random``, ``uuid``, or ``secrets``;
* calling ``time.time`` / ``time.time_ns`` / ``os.urandom`` /
  ``datetime.datetime.now`` / ``utcnow`` / ``today`` /
  ``datetime.date.today``;
* the clock-*sampling* forms of ``time.localtime`` / ``gmtime`` /
  ``ctime`` (zero args) and ``time.strftime`` (one arg — no explicit
  struct_time means "now").

Passing an explicit timestamp (``time.localtime(entry.created_at)``,
``time.strftime(fmt, t)``) is fine: that formats recorded state, it
does not sample the clock.  Monotonic timers (``time.monotonic``,
``time.perf_counter``) are also allowed — they measure wall time for
reporting and cannot leak into simulated state by value, because their
epoch is meaningless.

Compliant randomness::

    from repro import rng
    stream = rng.substream(master_seed, "aging.delete")

Genuinely wall-clock sites (a report date stamp, a manifest
``created_at``) are waived at the line::

    "created_at": time.time(),  # replint: disable=R001  (manifest metadata, ...)

:mod:`repro.faults` is deliberately **not** exempt.  Fault injection is
the code most tempted to reach for ``random`` ("it's chaos testing,
who cares") and the code where it would hurt the most: a fault plan is
cached, replayed, and compared across processes, so its crash points
and fate draws must come from :func:`repro.rng.substream` like every
other sampled quantity.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import ModuleContext, Rule, register

#: Modules whose very import is a finding.
_BANNED_MODULES = {"random", "uuid", "secrets"}

#: Fully dotted callables that always sample nondeterministic state.
_BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Callables that sample the clock only when called with no positional
#: argument (an explicit struct_time/seconds argument formats recorded
#: state instead).
_ZERO_ARG_SAMPLERS = {"time.localtime", "time.gmtime", "time.ctime", "time.asctime"}

#: ``time.strftime(fmt)`` samples the clock; ``time.strftime(fmt, t)``
#: formats the supplied time.
_ONE_ARG_SAMPLERS = {"time.strftime"}

#: Packages exempt from this rule entirely.
_EXEMPT_PACKAGES = ("repro.rng", "repro.obs")


@register
class DeterminismRule(Rule):
    __doc__ = __doc__

    rule_id = "R001"
    name = "determinism"
    summary = (
        "no random/uuid/secrets imports or clock-sampling calls outside "
        "repro.rng and repro.obs; route randomness through repro.rng"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if any(module.in_package(pkg) for pkg in _EXEMPT_PACKAGES):
            return

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _BANNED_MODULES:
                        yield module.finding(
                            self,
                            node,
                            f"import of nondeterministic module '{alias.name}'; "
                            f"use repro.rng substreams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                top = (node.module or "").split(".")[0]
                if node.level == 0 and top in _BANNED_MODULES:
                    yield module.finding(
                        self,
                        node,
                        f"import from nondeterministic module '{node.module}'; "
                        f"use repro.rng substreams instead",
                    )
            elif isinstance(node, ast.Call):
                dotted = module.dotted(node.func)
                if dotted is None:
                    continue
                nargs = len(node.args) + len(node.keywords)
                if (
                    dotted in _BANNED_CALLS
                    or (dotted in _ZERO_ARG_SAMPLERS and nargs == 0)
                    or (dotted in _ONE_ARG_SAMPLERS and nargs <= 1)
                ):
                    yield module.finding(
                        self,
                        node,
                        f"call to '{dotted}' samples nondeterministic state; "
                        f"simulation output must be a function of (params, seed)",
                    )

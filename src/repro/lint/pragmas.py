"""Inline suppression pragmas.

A finding is waived at its line with::

    x = time.time()  # replint: disable=R001  (report date stamp, not sim state)

Multiple ids separate with commas; ``all`` waives every rule on the
line.  A ``disable-file`` form at any line waives the whole file::

    # replint: disable-file=R002  (telemetry layer itself)

The parenthesised reason is required by convention (the docs say so; CI
reviewers enforce it) but not by the parser — a pragma without a reason
still suppresses, so a missing reason is a review problem, not a broken
build.

Comments are found with :mod:`tokenize`, not string search, so a pragma
inside a string literal does not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

from repro.lint.findings import PARSE_ERROR, Finding

_PRAGMA_RE = re.compile(
    r"#\s*replint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<ids>all|[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)"
)


@dataclass
class PragmaMap:
    """Suppressions parsed from one file's comments."""

    #: line number -> rule ids disabled on that line ("all" = every rule)
    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule ids disabled for the whole file
    file_disables: Set[str] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        """True when a pragma waives this finding.

        Parse errors (``E000``) are never suppressible: a file the
        analyzer cannot read is a problem regardless of pragmas.
        """
        if finding.rule_id == PARSE_ERROR:
            return False
        if "all" in self.file_disables or finding.rule_id in self.file_disables:
            return True
        ids = self.line_disables.get(finding.line)
        if ids is None:
            return False
        return "all" in ids or finding.rule_id in ids


def parse_pragmas(source: str) -> PragmaMap:
    """Extract replint pragmas from ``source``'s comments."""
    pragmas = PragmaMap()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            ids = {part.strip() for part in match.group("ids").split(",")}
            if match.group("kind") == "disable-file":
                pragmas.file_disables |= ids
            else:
                line = tok.start[0]
                pragmas.line_disables.setdefault(line, set()).update(ids)
    except tokenize.TokenError:
        # Unterminated constructs; the AST parse will report this file
        # as E000, so just return whatever pragmas were seen.
        pass
    return pragmas

"""The lint diagnostic record.

One :class:`Finding` per violation, carrying exactly what an editor or a
CI annotation needs: a repo-relative path, 1-based line, 1-based column,
the rule id, and a message that states the contract being broken (not
just the syntax that tripped it).  Findings order by position so output
is stable across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Rule id used for files that cannot be parsed at all.  Not a real rule:
#: it has no registry entry and cannot be waived by pragma or baseline —
#: a file the analyzer cannot read is a problem no matter what.
PARSE_ERROR = "E000"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, and why it matters."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """The canonical ``file:line:col RULE-ID message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON form (``repro-ffs lint --json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        """Position-major ordering, stable across runs."""
        return (self.path, self.line, self.col, self.rule_id, self.message)

"""``repro.lint`` — replint, the repo-aware static-analysis pass.

The reproduction's headline guarantees are statements about the *code*,
not about any particular run: randomness flows only through
:mod:`repro.rng`, telemetry is reachable only through the nullable
``*_or_none()`` facades (so the disabled path stays byte-identical),
library errors are :mod:`repro.errors` types, callables handed to the
process pool are picklable, and quantities in different units never mix
silently.  Nothing about running the test suite enforces those
conventions — a refactor can break them while every test still passes.
replint checks them mechanically, on every PR.

v2 adds whole-program analysis: the per-file rules (R001–R005) are
joined by project rules (R101–R104) that see every linted file at once
through a resolved call graph, so the determinism contract can be
*proved* transitively — every function reachable from cache-key
construction, aging replay, or fault-plan sampling is shown untainted
by clocks, randomness, environment reads, and set-iteration order —
instead of being spot-checked file by file.

The pieces:

* :mod:`repro.lint.findings` — the ``file:line:col RULE-ID message``
  diagnostic record;
* :mod:`repro.lint.registry` — the rule base class and registry
  (``repro-ffs lint --list-rules`` / ``--explain RULE``);
* :mod:`repro.lint.graph` — the AST-only import/call-graph builder
  (direct calls, constructors, ``self``/typed dispatch, an
  import-closure-bounded CHA fallback, and an honest ``dynamic``
  bottom for what cannot be resolved);
* :mod:`repro.lint.dataflow` — the deterministic worklist fixed-point
  solver project rules share;
* :mod:`repro.lint.project` — :class:`ProjectContext` /
  :class:`ProjectRule`, the whole-program rule interface;
* :mod:`repro.lint.rules` — the shipped rules: per-file R001–R005 and
  project-wide R101 (transitive determinism), R102 (schema-registry
  drift), R103 (interprocedural unit flow), R104 (set iteration
  order), each grounded in one of the contracts above;
* :mod:`repro.lint.pragmas` — inline waivers:
  ``# replint: disable=R001  (reason)``;
* :mod:`repro.lint.baseline` — the committed grandfather file
  (``replint.baseline/v2``: fingerprints carry the enclosing symbol
  path) so a gate can be adopted without a flag day;
* :mod:`repro.lint.engine` — file collection, parsing, graph
  construction, and the suppression pipeline tying it all together.

CLI: ``repro-ffs lint [PATHS] [--json] [--graph-json FILE]``; exit
codes follow ``bench --compare`` (0 clean, 1 findings, 2 usage error).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import LintResult, collect_file_facts, lint_paths
from repro.lint.findings import Finding
from repro.lint.graph import CallGraph, build_graph
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import Rule, all_rules, get_rule, register

# Importing the rules package registers the shipped rules.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "CallGraph",
    "Finding",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "build_graph",
    "collect_file_facts",
    "get_rule",
    "lint_paths",
    "register",
]

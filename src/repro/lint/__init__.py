"""``repro.lint`` — replint, the repo-aware static-analysis pass.

The reproduction's headline guarantees are statements about the *code*,
not about any particular run: randomness flows only through
:mod:`repro.rng`, telemetry is reachable only through the nullable
``*_or_none()`` facades (so the disabled path stays byte-identical),
library errors are :mod:`repro.errors` types, callables handed to the
process pool are picklable, and quantities in different units never mix
silently.  Nothing about running the test suite enforces those
conventions — a refactor can break them while every test still passes.
replint checks them mechanically, on every PR.

The pieces:

* :mod:`repro.lint.findings` — the ``file:line:col RULE-ID message``
  diagnostic record;
* :mod:`repro.lint.registry` — the rule base class and registry
  (``repro-ffs lint --list-rules`` / ``--explain RULE``);
* :mod:`repro.lint.rules` — the shipped rules, R001–R005, each grounded
  in one of the contracts above;
* :mod:`repro.lint.pragmas` — inline waivers:
  ``# replint: disable=R001  (reason)``;
* :mod:`repro.lint.baseline` — the committed grandfather file for
  pre-existing findings, so the gate can be adopted without a flag day;
* :mod:`repro.lint.engine` — file collection, parsing, and the
  suppression pipeline tying it all together.

CLI: ``repro-ffs lint [PATHS] [--json]``; exit codes follow
``bench --compare`` (0 clean, 1 findings, 2 usage error).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule, register

# Importing the rules package registers the shipped rules.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register",
]

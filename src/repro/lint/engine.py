"""File collection, parsing, and the suppression pipeline.

:func:`lint_paths` is the whole analyzer as one call: collect ``*.py``
files under the given paths, parse each, run the selected module rules,
build the whole-program call graph and run the project rules
(R101–R104), then apply suppression in two layers — inline pragmas
first (a deliberate, commented waiver at the site), committed baseline
second (grandfathered debt).  What survives is the lint failure.

Files that do not parse produce a non-suppressible ``E000`` finding:
an unreadable file can hide anything, so neither pragmas nor the
baseline may wave it through.  Project rules analyze whatever subset
*did* parse — a broken file degrades the graph conservatively (its
callees become unknown), it does not disable the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro import schemas
from repro.lint.baseline import Baseline, SymbolIndex, build_symbol_index
from repro.lint.findings import PARSE_ERROR, Finding
from repro.lint.graph import build_graph
from repro.lint.pragmas import PragmaMap, parse_pragmas
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import ModuleContext, Rule, all_rules, build_context

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".hg", "node_modules", ".mypy_cache"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    pragma_suppressed: int = 0
    baseline_suppressed: int = 0
    #: call-graph export (``--graph-json``); populated only when the
    #: run built a graph (a project rule was selected, or the caller
    #: asked for the export explicitly)
    graph_document: Optional[Dict[str, object]] = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """JSON form (``repro-ffs lint --json``)."""
        return {
            "schema": schemas.LINT_REPORT,
            "files_checked": self.files_checked,
            "pragma_suppressed": self.pragma_suppressed,
            "baseline_suppressed": self.baseline_suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand paths to the sorted list of ``*.py`` files under them.

    Hidden directories and the cache/VCS directories in ``_SKIP_DIRS``
    are skipped.  A path that is itself a ``.py`` file is taken as-is.
    Raises :class:`FileNotFoundError` for a path that does not exist
    (the CLI maps that to exit 2).
    """
    files: List[Path] = []
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(str(path))
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(p in _SKIP_DIRS or p.startswith(".") for p in parts[:-1]):
                continue
            files.append(candidate)
    # De-duplicate while keeping order (overlapping input paths).
    seen = set()
    unique: List[Path] = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def _rel_path(path: Path, root: Optional[Path]) -> str:
    """Repo-relative posix path when possible, else the path as given."""
    base = root or Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Iterable[Type[Rule]]] = None,
    baseline: Optional[Baseline] = None,
    root: Optional[Path] = None,
    export_graph: bool = False,
) -> LintResult:
    """Lint every ``*.py`` file under ``paths`` with ``rules``.

    ``rules`` defaults to the full registry.  ``baseline`` (when given)
    absorbs grandfathered findings after pragma suppression.  ``root``
    anchors the repo-relative paths in findings (defaults to the
    current directory) — it must match the root the baseline was
    recorded against, or fingerprints will not line up.
    ``export_graph`` forces the call graph to be built and attached to
    the result even when no project rule is selected.
    """
    rule_classes = list(rules) if rules is not None else all_rules()
    module_rules = [
        cls() for cls in rule_classes if not issubclass(cls, ProjectRule)
    ]
    project_rules = [
        cls() for cls in rule_classes if issubclass(cls, ProjectRule)
    ]

    result = LintResult()
    raw: List[Finding] = []
    sources: Dict[str, List[str]] = {}
    symbols: Dict[str, SymbolIndex] = {}
    modules: List[ModuleContext] = []
    pragmas_by_rel: Dict[str, PragmaMap] = {}

    for path in collect_files(paths):
        rel = _rel_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raw.append(Finding(rel, 1, 1, PARSE_ERROR, f"cannot read file: {exc}"))
            continue
        result.files_checked += 1
        sources[rel] = source.splitlines()
        try:
            module = build_context(path, rel, source)
        except SyntaxError as exc:
            raw.append(
                Finding(
                    rel,
                    exc.lineno or 1,
                    (exc.offset or 0) + 1,
                    PARSE_ERROR,
                    f"syntax error: {exc.msg}",
                )
            )
            continue

        modules.append(module)
        symbols[rel] = build_symbol_index(module.tree)
        pragmas = parse_pragmas(source)
        pragmas_by_rel[rel] = pragmas
        for rule in module_rules:
            for finding in rule.check(module):
                if pragmas.suppresses(finding):
                    result.pragma_suppressed += 1
                else:
                    raw.append(finding)

    if (project_rules or export_graph) and modules:
        graph = build_graph(modules)
        if export_graph:
            result.graph_document = graph.to_document()
        project = ProjectContext(
            modules=modules, graph=graph, pragmas=pragmas_by_rel
        )
        for rule in project_rules:
            for finding in rule.check_project(project):
                pragmas = pragmas_by_rel.get(finding.path)
                if pragmas is not None and pragmas.suppresses(finding):
                    result.pragma_suppressed += 1
                else:
                    raw.append(finding)

    raw.sort(key=lambda f: f.sort_key)
    if baseline is not None:
        raw, absorbed = baseline.filter(raw, sources, symbols)
        result.baseline_suppressed = absorbed
    result.findings = raw
    return result


def collect_sources(paths: Sequence[Path], root: Optional[Path] = None) -> Dict[str, List[str]]:
    """Source lines keyed by repo-relative path (for ``--update-baseline``)."""
    return collect_file_facts(paths, root)[0]


def collect_file_facts(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Tuple[Dict[str, List[str]], Dict[str, SymbolIndex]]:
    """Source lines and symbol indexes keyed by repo-relative path.

    Both maps feed baseline fingerprinting; files that cannot be read
    or parsed get empty entries (their findings are ``E000`` and never
    baselined anyway).
    """
    import ast

    sources: Dict[str, List[str]] = {}
    symbols: Dict[str, SymbolIndex] = {}
    for path in collect_files(paths):
        rel = _rel_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            sources[rel] = []
            continue
        sources[rel] = source.splitlines()
        try:
            symbols[rel] = build_symbol_index(ast.parse(source))
        except SyntaxError:
            pass
    return sources, symbols

"""Project-scope rules: whole-program context and the rule base class.

The original replint rules see one module at a time.  The v2 rule
families (R101–R104) judge properties that only exist at the project
level — reachability, cross-module unit flow, registry-wide schema
drift — so they subclass :class:`ProjectRule` and receive a
:class:`ProjectContext` holding every parsed module plus the resolved
call graph.

Pragma suppression still works per line: the engine applies each file's
pragma map to project-rule findings exactly as it does for module-rule
findings, so ``# replint: disable=R101  (reason)`` at the flagged line
waives a graph finding the same way it waives a syntactic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.lint.findings import Finding
from repro.lint.graph import CallGraph
from repro.lint.pragmas import PragmaMap
from repro.lint.registry import ModuleContext, Rule


@dataclass
class ProjectContext:
    """Everything a project-scope rule can see."""

    #: every parsed module, in collection (path-sorted) order
    modules: List[ModuleContext]
    #: the resolved whole-program call graph
    graph: CallGraph
    #: per-file pragma maps, keyed by repo-relative path — rules that
    #: *seed* facts from already-waived sites (R101 honouring an R001
    #: waiver) read these; final suppression is the engine's job
    pragmas: Dict[str, PragmaMap] = field(default_factory=dict)

    def module_by_name(self, dotted: str) -> "ModuleContext | None":
        """Look up a parsed module by dotted name."""
        return self.graph.modules.get(dotted)


class ProjectRule(Rule):
    """Base class for rules that analyze the whole project at once.

    Subclasses implement :meth:`check_project`; the per-module
    :meth:`check` is a no-op so a ProjectRule can sit in the same
    registry, ``--select`` list, and ``--explain`` index as the
    syntactic rules.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

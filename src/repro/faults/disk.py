"""Latent sector read errors: plan-driven bad blocks under the reads.

A latent sector error is damage that already happened — the medium
degraded silently — and only surfaces when the sector is next *read*.
:func:`read_fault_hook` compiles a plan's ``bad_blocks`` into a check
the :class:`~repro.disk.model.DiskModel` runs before servicing each
read; a hit raises a typed
:class:`~repro.errors.LatentSectorReadError` (and emits a
``fault_injected`` event) before the model's clock or head state moves,
so a caller that catches the error can retry or remap without the model
having drifted.

Writes never fault: writing a bad sector remaps it in real drives, and
the study's interesting question is what *reads* of an aged layout hit.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Optional

from repro import obs
from repro.errors import LatentSectorReadError
from repro.faults.plan import FaultPlan
from repro.obs import events as obs_events


def read_fault_hook(
    plan: FaultPlan,
    block_size: int,
    fs_offset_bytes: int = 0,
) -> Optional[Callable[[int, int], None]]:
    """A ``DiskModel`` read hook enforcing ``plan.bad_blocks``.

    Returns ``None`` when the plan has no bad blocks, so the disabled
    path stays the disabled path (the model skips the check entirely).
    The hook receives ``(start_byte, nbytes)`` of each read request and
    raises on any overlap with a bad block's byte range.
    """
    if not plan.bad_blocks:
        return None
    bad = sorted(set(plan.bad_blocks))
    events = obs.events_or_none()

    def check(start_byte: int, nbytes: int) -> None:
        first = (start_byte - fs_offset_bytes) // block_size
        last = (start_byte + nbytes - 1 - fs_offset_bytes) // block_size
        # Find the first bad block >= first; it faults iff it is <= last.
        idx = bisect_right(bad, first - 1)
        if idx >= len(bad) or bad[idx] > last:
            return
        fs_block = bad[idx]
        if events is not None:
            events.emit(
                obs_events.FAULT_INJECTED,
                kind="latent_read_error",
                fs_block=fs_block,
                start_byte=start_byte,
                nbytes=nbytes,
            )
        raise LatentSectorReadError(
            f"latent sector error reading block {fs_block} "
            f"(request {start_byte}+{nbytes})",
            byte=fs_offset_bytes + fs_block * block_size,
            fs_block=fs_block,
        )

    return check

"""The fault injector: crash points and buffered-write loss.

The simulator's metadata (inode block pointers, sizes, directory
entries) conceptually buffers above the disk model between flushes,
while allocation-map updates land synchronously — the same asymmetry
that made real FFS crashes interesting.  The injector models exactly
that: it records every operation since the last flush in a *dirty
buffer*, and when the plan's crash point fires it halts the replay and
decides, per buffered write, whether that write **made it**, was
**dropped** (the metadata update never reached the disk), or was
**torn** (only a prefix of a multi-block write landed).

The surviving file system carries precisely the damage classes
:mod:`repro.fsck` repairs:

* *orphaned blocks* — allocated in the maps, referenced by no inode
  (a dropped create/append whose allocations were already durable);
* *doubly-allocated fragments* — two inodes claiming the same space
  (a dropped delete resurrecting an inode whose blocks were reused);
* *truncated files* — an inode whose recorded size exceeds the blocks
  that actually reached the disk (a torn append);
* *dead directory entries* and *orphaned inodes* — a create whose
  inode write and directory write straddled the crash.

Every fate decision draws from ``rng.substream(plan.seed,
"faults.fates")`` in buffer order, so a plan's damage is a pure
function of the plan and the replayed workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro import rng
from repro.errors import FaultInjectionError
from repro.faults.plan import FaultPlan
from repro.ffs.filesystem import FileSystem
from repro.ffs.inode import FragTail, Inode
from repro.obs import events as obs_events

#: Operation kinds the injector buffers (mirrors the workload ops).
OP_CREATE = "create"
OP_APPEND = "append"
OP_DELETE = "delete"


@dataclass(frozen=True)
class CrashSummary:
    """What the crash did, for reports and the chaos harness."""

    day: int
    block_write: int
    buffered_ops: int
    applied: int
    dropped: int
    torn: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "day": self.day,
            "block_write": self.block_write,
            "buffered_ops": self.buffered_ops,
            "applied": self.applied,
            "dropped": self.dropped,
            "torn": self.torn,
        }


class CrashPointReached(FaultInjectionError):
    """The plan's crash point fired; the replay must halt.

    Carries the :class:`CrashSummary` of the damage just applied.  The
    aging replayer catches this and returns its partial result with
    ``crashed=True``; nothing else should swallow it.
    """

    def __init__(self, message: str, summary: CrashSummary) -> None:
        super().__init__(message)
        self.summary = summary


@dataclass
class _InodeSnapshot:
    """Pre-operation copy of the fields a lost write would roll back."""

    ino: int
    is_dir: bool
    size: int
    ctime: float
    mtime: float
    dir_cg: int
    alloc_cg: int
    blocks: List[int]
    tail: Optional[FragTail]
    indirect_blocks: List[int]

    @classmethod
    def of(cls, inode: Inode) -> "_InodeSnapshot":
        return cls(
            ino=inode.ino,
            is_dir=inode.is_dir,
            size=inode.size,
            ctime=inode.ctime,
            mtime=inode.mtime,
            dir_cg=inode.dir_cg,
            alloc_cg=inode.alloc_cg,
            blocks=list(inode.blocks),
            tail=inode.tail,
            indirect_blocks=list(inode.indirect_blocks),
        )

    def restore_onto(self, inode: Inode) -> None:
        inode.size = self.size
        inode.mtime = self.mtime
        inode.alloc_cg = self.alloc_cg
        inode.blocks = list(self.blocks)
        inode.tail = self.tail
        inode.indirect_blocks = list(self.indirect_blocks)

    def rebuild(self) -> Inode:
        return Inode(
            ino=self.ino,
            is_dir=self.is_dir,
            size=self.size,
            ctime=self.ctime,
            mtime=self.mtime,
            dir_cg=self.dir_cg,
            alloc_cg=self.alloc_cg,
            blocks=list(self.blocks),
            tail=self.tail,
            indirect_blocks=list(self.indirect_blocks),
        )


@dataclass
class _BufferedOp:
    """One operation in the dirty buffer (metadata not yet flushed)."""

    kind: str
    ino: int
    directory: str
    block_writes: int
    snapshot: Optional[_InodeSnapshot] = None
    blocks_added: List[int] = field(default_factory=list)


class FaultInjector:
    """Applies one :class:`~repro.faults.plan.FaultPlan` to one replay.

    The replayer calls :meth:`begin_day` at each day boundary and
    :meth:`before_op` / :meth:`after_op` around every workload
    operation; everything else is internal.  An injector is single-use:
    it accumulates state for exactly one replay.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fates = rng.substream(plan.seed, "faults.fates")
        self._e = obs.events_or_none()
        self._day = 0
        self._armed = plan.crash is not None and plan.crash.day <= 0
        self._writes_since_armed = 0
        self._buffer: List[_BufferedOp] = []
        self._ops_since_flush = 0
        self._pending: Optional[_InodeSnapshot] = None
        self._pending_dir = ""

    # ------------------------------------------------------------------
    # Replayer hooks
    # ------------------------------------------------------------------

    def begin_day(self, day: int) -> None:
        """Advance the simulated day; arm the crash when its day starts."""
        self._day = day
        if self.plan.crash is not None and day >= self.plan.crash.day:
            self._armed = True

    def before_op(self, fs: FileSystem, kind: str, ino: Optional[int]) -> None:
        """Snapshot mutable state a lost write would need to roll back.

        Taken *before* the op because a delete destroys both the inode
        and its directory membership, and a dropped delete must be able
        to resurrect them exactly.
        """
        if ino is not None and ino in fs.inodes:
            self._pending = _InodeSnapshot.of(fs.inodes[ino])
            self._pending_dir = fs._dir_of_file.get(ino, "")
        else:
            self._pending = None
            self._pending_dir = ""

    def after_op(self, fs: FileSystem, kind: str, ino: int) -> None:
        """Buffer the completed op; fire the crash point when due.

        Raises :class:`CrashPointReached` the moment the armed crash
        point's write budget is exhausted — after applying the plan's
        buffered-write damage to ``fs``.
        """
        snapshot = self._pending
        self._pending = None
        record = self._record_op(fs, kind, ino, snapshot)
        self._buffer.append(record)
        if self._armed:
            self._writes_since_armed += record.block_writes
            crash = self.plan.crash
            if (
                crash is not None
                and self._writes_since_armed >= crash.after_block_writes
            ):
                summary = self._crash(fs)
                raise CrashPointReached(
                    f"injected crash on day {self._day} after block write "
                    f"{self._writes_since_armed} "
                    f"({summary.dropped} dropped, {summary.torn} torn of "
                    f"{summary.buffered_ops} buffered)",
                    summary,
                )
        self._ops_since_flush += 1
        if self._ops_since_flush >= self.plan.flush_interval_ops:
            self._buffer.clear()
            self._ops_since_flush = 0

    # ------------------------------------------------------------------
    # Buffering
    # ------------------------------------------------------------------

    def _record_op(
        self,
        fs: FileSystem,
        kind: str,
        ino: int,
        snapshot: Optional[_InodeSnapshot],
    ) -> _BufferedOp:
        if kind == OP_DELETE:
            return _BufferedOp(
                kind=kind,
                ino=ino,
                directory=self._pending_dir,
                block_writes=0,
                snapshot=snapshot,
            )
        directory = fs._dir_of_file.get(ino, "")
        inode = fs.inodes[ino]
        if kind == OP_CREATE:
            blocks_added = list(inode.blocks)
            indirects_added = len(inode.indirect_blocks)
            tail_writes = 1 if inode.tail is not None else 0
        else:
            old_blocks = snapshot.blocks if snapshot is not None else []
            blocks_added = inode.blocks[len(old_blocks):]
            old_indirects = (
                len(snapshot.indirect_blocks) if snapshot is not None else 0
            )
            indirects_added = len(inode.indirect_blocks) - old_indirects
            old_tail = snapshot.tail if snapshot is not None else None
            tail_writes = 1 if inode.tail != old_tail else 0
        return _BufferedOp(
            kind=kind,
            ino=ino,
            directory=directory,
            block_writes=len(blocks_added) + indirects_added + tail_writes,
            snapshot=snapshot,
            blocks_added=blocks_added,
        )

    # ------------------------------------------------------------------
    # The crash itself
    # ------------------------------------------------------------------

    def _crash(self, fs: FileSystem) -> CrashSummary:
        """Decide each buffered write's fate and mutate ``fs`` to match."""
        applied = dropped = torn = 0
        for op in reversed(self._buffer):
            fate = self._sample_fate(op)
            if fate == "applied":
                applied += 1
                continue
            if fate == "dropped":
                dropped += 1
                self._apply_drop(fs, op)
            else:
                torn += 1
                self._apply_tear(fs, op)
            self._emit(
                f"{fate}_write",
                op=op.kind,
                ino=op.ino,
                blocks=len(op.blocks_added),
            )
        summary = CrashSummary(
            day=self._day,
            block_write=self._writes_since_armed,
            buffered_ops=len(self._buffer),
            applied=applied,
            dropped=dropped,
            torn=torn,
        )
        self._emit("crash", **summary.to_dict())
        self._buffer.clear()
        return summary

    def _sample_fate(self, op: _BufferedOp) -> str:
        draw = self._fates.random()
        if draw < self.plan.drop_prob:
            return "dropped"
        if draw < self.plan.drop_prob + self.plan.tear_prob:
            # Tearing needs at least two landed blocks to tear between;
            # otherwise the write degrades to wholly dropped.
            if op.kind != OP_DELETE and len(op.blocks_added) >= 2:
                return "torn"
            return "dropped"
        return "applied"

    def _apply_drop(self, fs: FileSystem, op: _BufferedOp) -> None:
        if op.kind == OP_CREATE:
            # Create straddles two metadata writes: the inode and the
            # directory entry.  Losing either half produces a different
            # damage class; pick one deterministically.
            lost_inode_write = self._fates.random() < 0.5
            directory = fs.directories.get(op.directory)
            if lost_inode_write:
                # Inode never landed: its blocks become orphans, and the
                # (durable) directory entry now points at a dead inode.
                fs.inodes.pop(op.ino, None)
                fs._dir_of_file.pop(op.ino, None)
                fs._realloc_mark.pop(op.ino, None)
            else:
                # Directory entry never landed: the inode survives but
                # belongs to no directory (fsck reattaches it).
                if directory is not None and op.ino in directory.children:
                    directory.remove(op.ino)
                fs._dir_of_file.pop(op.ino, None)
        elif op.kind == OP_APPEND:
            inode = fs.inodes.get(op.ino)
            if inode is not None and op.snapshot is not None:
                # The grown block pointers never landed; the allocations
                # (and any freed-tail reuse) stay in the durable maps.
                op.snapshot.restore_onto(inode)
        else:  # delete: the inode/directory updates never landed
            if op.snapshot is not None and op.ino not in fs.inodes:
                fs.inodes[op.ino] = op.snapshot.rebuild()
                directory = fs.directories.get(op.directory)
                if directory is not None and op.ino not in directory.children:
                    directory.add(op.ino)
                if op.directory:
                    fs._dir_of_file[op.ino] = op.directory

    def _apply_tear(self, fs: FileSystem, op: _BufferedOp) -> None:
        inode = fs.inodes.get(op.ino)
        if inode is None:
            return
        keep = self._fates.randrange(1, len(op.blocks_added))
        if op.kind == OP_CREATE:
            # Only the first ``keep`` block pointers landed; the size
            # field (written with the inode) still claims the full file.
            inode.blocks = op.blocks_added[:keep]
            inode.tail = None
        elif op.snapshot is not None:
            # The size and tail updates landed but a suffix of the new
            # block pointers did not, so the file reads as longer than
            # the blocks that actually reached the disk.
            inode.blocks = list(op.snapshot.blocks) + op.blocks_added[:keep]

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _emit(self, kind: str, **fields: object) -> None:
        if self._e is not None:
            fields.setdefault("day", self._day)
            self._e.emit(obs_events.FAULT_INJECTED, kind=kind, **fields)

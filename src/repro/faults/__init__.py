"""``repro.faults`` — deterministic fault injection for the simulator.

The aged-FS comparison in the paper assumes a perfectly reliable disk;
this package removes that assumption without giving up determinism.  A
:class:`~repro.faults.plan.FaultPlan` is a *pure description* of what
will go wrong — a crash point, the fate probabilities of buffered
writes, a set of latently-bad blocks — sampled entirely from
:mod:`repro.rng` substreams, so the same seed always injects the same
faults.  The plan is inert data: it participates in cache keys
(:func:`repro.cache.keys.replay_key`) and serialises into chaos
reports.

Three injection surfaces:

* :class:`~repro.faults.injector.FaultInjector` hooks the aging
  replayer's write pipeline and fires the plan's **crash point** —
  halting the replay after the Nth block write on (or after) day D and
  discarding/tearing the metadata writes still buffered above the disk
  model;
* :func:`~repro.faults.disk.read_fault_hook` arms a
  :class:`~repro.disk.model.DiskModel` with the plan's **latent sector
  errors**, surfaced as typed
  :class:`~repro.errors.LatentSectorReadError`;
* :mod:`~repro.faults.chaos` ties injection to :mod:`repro.fsck`:
  replay → crash → repair → measure, over a seeded grid of crash
  points per policy.

Every injection emits a ``fault_injected`` row into the
:mod:`repro.obs.events` timeline when telemetry is on, and nothing in
this package runs unless a plan is explicitly supplied — the no-fault
path is byte-identical to a build without this package.
"""

from __future__ import annotations

from repro.faults.chaos import ChaosOutcome, run_chaos
from repro.faults.disk import read_fault_hook
from repro.faults.injector import CrashPointReached, CrashSummary, FaultInjector
from repro.faults.plan import CrashSpec, FaultPlan, sample_plans

__all__ = [
    "ChaosOutcome",
    "CrashPointReached",
    "CrashSpec",
    "CrashSummary",
    "FaultInjector",
    "FaultPlan",
    "read_fault_hook",
    "run_chaos",
    "sample_plans",
]

"""The chaos harness: crash an aging replay, repair it, measure the cost.

``repro-ffs chaos`` answers the question the paper's clean-room aging
cannot: *what does a crash-and-repair cycle do to an aged layout?*  For
each sampled crash plan and each policy it runs the replay twice:

* **crashed** — the plan as sampled: the replay halts at the crash
  point with the plan's buffered-write damage applied, then
  :func:`repro.fsck.repair_filesystem` repairs the wreckage back to a
  ``check_filesystem``-clean state;
* **baseline** — the plan's :meth:`~repro.faults.plan.FaultPlan.inert`
  twin: the replay halts at the *identical* operation with zero damage,
  i.e. what a clean shutdown at that instant would leave.

Both sides then get the same measurements (aggregate layout score,
read throughput over the largest surviving files), so the reported
deltas isolate exactly the cost of the crash + repair, not of stopping
early.

Every case is a pure function of ``(preset, policy, plan)``: the
harness runs cases across processes with ``--jobs N`` and renders
byte-identical output to a serial run, in sampling order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench.iomodel import FileIOPricer
from repro.errors import InvalidRequestError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, sample_plans

from repro import schemas, storage

#: Schema tag of the ``--json`` report.
REPORT_SCHEMA = schemas.CHAOS

#: How many of the largest surviving files the throughput probe reads.
THROUGHPUT_FILES = 10


@dataclass(frozen=True)
class ChaosOutcome:
    """One (policy, crash plan) case: crashed-then-repaired vs baseline."""

    policy: str
    plan: Dict[str, Any]
    #: Whether the crash point actually fired during the replay (a plan
    #: whose write budget exceeds the whole workload never fires).
    fired: bool
    crash: Optional[Dict[str, int]]
    fsck: Optional[Dict[str, Any]]
    score_repaired: Optional[float]
    score_baseline: Optional[float]
    throughput_repaired: float
    throughput_baseline: float
    live_files_repaired: int
    live_files_baseline: int
    ops_applied: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "plan": self.plan,
            "fired": self.fired,
            "crash": self.crash,
            "fsck": self.fsck,
            "score_repaired": self.score_repaired,
            "score_baseline": self.score_baseline,
            "throughput_repaired": self.throughput_repaired,
            "throughput_baseline": self.throughput_baseline,
            "live_files_repaired": self.live_files_repaired,
            "live_files_baseline": self.live_files_baseline,
            "ops_applied": self.ops_applied,
        }

    @classmethod
    def from_dict(cls, blob: Dict[str, Any]) -> "ChaosOutcome":
        return cls(**blob)


@dataclass(frozen=True)
class ChaosReport:
    """Everything one ``repro-ffs chaos`` invocation established."""

    preset: str
    seed: int
    outcomes: Tuple[ChaosOutcome, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "preset": self.preset,
            "seed": self.seed,
            "cases": [o.to_dict() for o in self.outcomes],
            "all_repairs_clean": self.all_repairs_clean(),
        }

    def all_repairs_clean(self) -> bool:
        """True when every fired crash was repaired to a verified-clean
        file system (the repair itself re-runs ``check_filesystem``, so
        an unclean repair would have raised instead)."""
        return all(o.fsck is not None for o in self.outcomes if o.fired)


def run_case(preset_name: str, policy: str, plan: FaultPlan) -> ChaosOutcome:
    """Run one crash-vs-baseline pair; pure in (preset, policy, plan)."""
    from repro.experiments import config
    from repro.aging.replay import AgingReplayer
    from repro.ffs.check import check_filesystem
    from repro.ffs.filesystem import FileSystem
    from repro.fsck import repair_filesystem

    art = config.artifacts(preset_name)
    params = config.get_preset(preset_name).params

    fs = FileSystem(params=params, policy=policy)
    crashed = AgingReplayer(
        fs, label=f"chaos-{policy}", faults=FaultInjector(plan)
    ).replay(art.reconstructed)
    if not crashed.crashed:
        return ChaosOutcome(
            policy=policy,
            plan=plan.to_payload(),
            fired=False,
            crash=None,
            fsck=None,
            score_repaired=None,
            score_baseline=None,
            throughput_repaired=0.0,
            throughput_baseline=0.0,
            live_files_repaired=len(fs.files()),
            live_files_baseline=len(fs.files()),
            ops_applied=crashed.ops_applied,
        )
    fsck_report = repair_filesystem(fs)  # verifies check_filesystem

    base_fs = FileSystem(params=params, policy=policy)
    AgingReplayer(
        base_fs,
        label=f"chaos-{policy}-baseline",
        faults=FaultInjector(plan.inert()),
    ).replay(art.reconstructed)
    check_filesystem(base_fs)  # an inert crash must leave zero damage

    return ChaosOutcome(
        policy=policy,
        plan=plan.to_payload(),
        fired=True,
        crash=crashed.crash.to_dict() if crashed.crash is not None else None,
        fsck=fsck_report.to_dict(),
        score_repaired=_score(fs),
        score_baseline=_score(base_fs),
        throughput_repaired=_read_throughput(fs),
        throughput_baseline=_read_throughput(base_fs),
        live_files_repaired=len(fs.files()),
        live_files_baseline=len(base_fs.files()),
        ops_applied=crashed.ops_applied,
    )


def _score(fs) -> Optional[float]:
    from repro.analysis.layout import score_file_set

    return score_file_set(fs.files())


def _read_throughput(fs, n_files: int = THROUGHPUT_FILES) -> float:
    """Bytes/second reading the ``n_files`` largest files, inode order.

    The probe is deliberately tiny — it exists to show whether the
    repair left the surviving layout readable at a comparable rate, not
    to re-run the paper's benchmarks.
    """
    largest = sorted(fs.files(), key=lambda i: (-i.size, i.ino))[:n_files]
    inodes = sorted(largest, key=lambda i: i.ino)
    if not inodes:
        return 0.0
    disk = storage.make_storage()
    pricer = FileIOPricer(fs, disk)
    total = 0
    for inode in inodes:
        pricer.read_inode(inode.ino)
        pricer.read_file_data(inode)
        total += inode.size
    if disk.now_ms <= 0.0:
        return 0.0
    return total / (disk.now_ms / 1000.0)


# ----------------------------------------------------------------------
# Worker task (module-level so it pickles under ProcessPoolExecutor)
# ----------------------------------------------------------------------


def _chaos_case_task(
    preset_name: str,
    policy: str,
    plan_payload: Dict[str, Any],
    backend: str = storage.DEFAULT_BACKEND,
) -> Dict[str, Any]:
    """One case in a worker process; ships the outcome home as JSON.

    The parent's storage-backend selection is process-wide state, so it
    is re-applied here — a ``--jobs N`` chaos run prices its throughput
    probes on the same substrate as a serial one.
    """
    storage.configure(backend)
    return run_case(
        preset_name, policy, FaultPlan.from_payload(plan_payload)
    ).to_dict()


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


def run_chaos(
    preset_name: str = "tiny",
    policies: Sequence[str] = ("ffs", "realloc"),
    crashes: int = 3,
    seed: int = 4242,
    jobs: int = 1,
    max_write: int = 400,
) -> ChaosReport:
    """Crash-and-repair a seeded grid of ``crashes`` plans per policy.

    Case order — and therefore rendered output — is (policy, plan
    index), regardless of ``jobs``: parallel runs submit all cases up
    front and collect results in submission order, so stdout is
    byte-identical to a serial run.
    """
    if jobs < 1:
        raise InvalidRequestError(f"jobs must be >= 1 (got {jobs})")
    from repro.experiments import config

    preset = config.get_preset(preset_name)
    plans = sample_plans(seed, days=preset.days, count=crashes, max_write=max_write)
    cases = [(policy, plan) for policy in policies for plan in plans]
    if jobs == 1 or len(cases) == 1:
        from repro.experiments.runner import timed_call

        outcomes = []
        for index, (policy, plan) in enumerate(cases):
            outcome, _wall = timed_call(
                f"chaos.case{index:02d}.{policy}",
                lambda p=policy, pl=plan: run_case(preset_name, p, pl),
                preset=preset_name,
            )
            outcomes.append(outcome)
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(
                    _chaos_case_task, preset_name, policy, plan.to_payload(),
                    storage.current_backend(),
                )
                for policy, plan in cases
            ]
            outcomes = [
                ChaosOutcome.from_dict(future.result()) for future in futures
            ]
    return ChaosReport(preset=preset_name, seed=seed, outcomes=tuple(outcomes))


def render_report(report: ChaosReport) -> str:
    """Deterministic human-readable rendering of a chaos run."""
    lines = [
        f"chaos: preset={report.preset} seed={report.seed} "
        f"cases={len(report.outcomes)}"
    ]
    for outcome in report.outcomes:
        crash_spec = outcome.plan.get("crash") or {}
        where = (
            f"day {crash_spec.get('day')} "
            f"write {crash_spec.get('after_block_writes')}"
        )
        if not outcome.fired:
            lines.append(
                f"  {outcome.policy:8s} {where}: crash point never fired "
                f"({outcome.ops_applied} ops replayed)"
            )
            continue
        crash = outcome.crash or {}
        fsck = outcome.fsck or {}
        repairs = sum(
            int(fsck.get(key, 0))
            for key in (
                "doubly_allocated",
                "truncated_files",
                "sizeless_files",
                "dead_dirents",
                "duplicate_dirents",
                "orphaned_inodes",
                "dropped_inodes",
            )
        )
        lines.append(
            f"  {outcome.policy:8s} {where}: "
            f"{crash.get('dropped', 0)} dropped, {crash.get('torn', 0)} torn "
            f"of {crash.get('buffered_ops', 0)} buffered; "
            f"{repairs} repairs, "
            f"{fsck.get('orphaned_frags', 0)} orphaned frags; "
            f"score {_fmt_score(outcome.score_baseline)} -> "
            f"{_fmt_score(outcome.score_repaired)}; "
            f"read {_fmt_delta(outcome.throughput_baseline, outcome.throughput_repaired)}"
        )
    lines.append(
        "all fired crashes repaired to fsck-clean: "
        + ("yes" if report.all_repairs_clean() else "NO")
    )
    return "\n".join(lines)


def _fmt_score(score: Optional[float]) -> str:
    return "n/a" if score is None else f"{score:.4f}"


def _fmt_delta(baseline: float, repaired: float) -> str:
    if baseline <= 0.0:
        return "n/a"
    return f"{(repaired - baseline) / baseline:+.1%} vs clean halt"

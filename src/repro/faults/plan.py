"""Fault plans: pure, seeded descriptions of what will go wrong.

A plan is sampled once from :mod:`repro.rng` substreams and then never
consults randomness again at decision *sites* — the injector derives its
own fate stream from the plan's seed, so two runs under equal plans
inject byte-identical faults no matter how the consuming code
interleaves other work.  Plans are frozen dataclasses with a canonical
JSON payload (:meth:`FaultPlan.to_payload`), which is exactly what
enters the artifact-cache key: a cached no-fault aged image can never be
served for a faulted run because the key payloads differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import rng
from repro.errors import InvalidRequestError


@dataclass(frozen=True)
class CrashSpec:
    """One crash point: halt after the Nth block write on/after day D.

    The crash *arms* at the start of simulated day ``day`` and fires the
    moment the ``after_block_writes``-th block write since arming
    completes — so a crash point whose day turns out quieter than N
    writes still fires, on the first day that accumulates enough write
    traffic (real crashes do not politely wait for a busy day either).
    """

    day: int
    after_block_writes: int

    def __post_init__(self) -> None:
        if self.day < 0:
            raise InvalidRequestError(f"crash day {self.day} is negative")
        if self.after_block_writes < 1:
            raise InvalidRequestError(
                f"crash after {self.after_block_writes} block writes; "
                "must be >= 1"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault-injection plan.

    Parameters
    ----------
    seed:
        Master seed of the plan's own fate substreams (buffered-write
        fates at crash time are drawn from
        ``rng.substream(seed, "faults.fates")``).
    crash:
        The crash point, or ``None`` for a plan that never crashes
        (useful as the damage-free control of a chaos case — it halts
        nothing and tears nothing).
    drop_prob:
        Probability that a metadata write still buffered at crash time
        was wholly lost (never reached the disk).
    tear_prob:
        Probability that a buffered *multi-block* write was torn — only
        a prefix of its blocks reached the disk.
    flush_interval_ops:
        Operations between metadata flushes.  Writes older than the last
        flush are durable; only the ops since it are at risk at a crash.
    bad_blocks:
        File-system block addresses with latent sector errors: reading
        any of them raises :class:`~repro.errors.LatentSectorReadError`.
    """

    seed: int
    crash: Optional[CrashSpec] = None
    drop_prob: float = 0.5
    tear_prob: float = 0.25
    flush_interval_ops: int = 16
    bad_blocks: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_prob <= 1.0:
            raise InvalidRequestError(f"drop_prob {self.drop_prob} not in [0, 1]")
        if not 0.0 <= self.tear_prob <= 1.0:
            raise InvalidRequestError(f"tear_prob {self.tear_prob} not in [0, 1]")
        if self.drop_prob + self.tear_prob > 1.0:
            raise InvalidRequestError(
                "drop_prob + tear_prob exceeds 1.0; fates must be a "
                "probability split"
            )
        if self.flush_interval_ops < 1:
            raise InvalidRequestError(
                f"flush_interval_ops {self.flush_interval_ops} must be >= 1"
            )

    def to_payload(self) -> Dict[str, object]:
        """Canonical JSON-serializable form (cache keys, chaos reports)."""
        return {
            "seed": self.seed,
            "crash": (
                None
                if self.crash is None
                else {
                    "day": self.crash.day,
                    "after_block_writes": self.crash.after_block_writes,
                }
            ),
            "drop_prob": self.drop_prob,
            "tear_prob": self.tear_prob,
            "flush_interval_ops": self.flush_interval_ops,
            "bad_blocks": list(self.bad_blocks),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_payload` output (worker tasks)."""
        crash_blob = payload.get("crash")
        crash = (
            None
            if crash_blob is None
            else CrashSpec(
                day=int(crash_blob["day"]),  # type: ignore[index,call-overload]
                after_block_writes=int(
                    crash_blob["after_block_writes"]  # type: ignore[index,call-overload]
                ),
            )
        )
        return cls(
            seed=int(payload["seed"]),  # type: ignore[call-overload]
            crash=crash,
            drop_prob=float(payload["drop_prob"]),  # type: ignore[arg-type]
            tear_prob=float(payload["tear_prob"]),  # type: ignore[arg-type]
            flush_interval_ops=int(
                payload["flush_interval_ops"]  # type: ignore[call-overload]
            ),
            bad_blocks=tuple(payload["bad_blocks"]),  # type: ignore[arg-type]
        )

    def inert(self) -> "FaultPlan":
        """The damage-free twin of this plan.

        Same crash point — the replay halts at the identical op — but
        every buffered write survives, so the halted file system is
        exactly what a clean shutdown at that instant would leave.  The
        chaos harness uses this as the never-crashed comparator.
        """
        return FaultPlan(
            seed=self.seed,
            crash=self.crash,
            drop_prob=0.0,
            tear_prob=0.0,
            flush_interval_ops=self.flush_interval_ops,
            bad_blocks=(),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.crash is None:
            crash = "no crash"
        else:
            crash = (
                f"crash day {self.crash.day} "
                f"write {self.crash.after_block_writes}"
            )
        return (
            f"plan(seed={self.seed}, {crash}, drop={self.drop_prob:.2f}, "
            f"tear={self.tear_prob:.2f}, bad_blocks={len(self.bad_blocks)})"
        )


def sample_plans(
    master_seed: int,
    days: int,
    count: int,
    max_write: int = 400,
    drop_prob: float = 0.5,
    tear_prob: float = 0.25,
) -> List[FaultPlan]:
    """Sample a seeded grid of ``count`` crash plans over ``days``.

    Crash days are drawn uniformly from the aging window (skipping day
    0, whose early writes are dominated by the seed directories) and the
    write ordinal uniformly from ``[1, max_write]``.  Each plan gets its
    own derived seed so fate streams never collide across plans.  The
    whole grid is a pure function of ``(master_seed, days, count,
    max_write, drop_prob, tear_prob)``.
    """
    if count < 1:
        raise InvalidRequestError(f"cannot sample {count} fault plans")
    if days < 2:
        raise InvalidRequestError(
            f"need an aging window of >= 2 days to place crashes (got {days})"
        )
    stream = rng.substream(master_seed, "faults.grid")
    plans: List[FaultPlan] = []
    for index in range(count):
        plans.append(
            FaultPlan(
                seed=master_seed * 10_000 + index,
                crash=CrashSpec(
                    day=stream.randint(1, days - 1),
                    after_block_writes=stream.randint(1, max_write),
                ),
                drop_prob=drop_prob,
                tear_prob=tear_prob,
            )
        )
    return plans

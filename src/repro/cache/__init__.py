"""``repro.cache`` — a persistent store for expensive artifacts.

Aging a file system means replaying months of simulated activity, and
the experiment suite needs several agings (two policies plus the
ground-truth "Real" run) before it can measure anything.  Within one
process :mod:`repro.experiments.config` memoizes them with
``lru_cache``; this package extends that memoization *across* processes
by writing each aged :class:`~repro.aging.replay.ReplayResult` to disk,
so a warm second ``repro-ffs experiment all`` (or a parallel worker)
skips re-aging entirely.

Keying and invalidation
-----------------------

Every entry is stored under a SHA-256 content hash of everything that
determines the result: the full aging configuration (file-system
geometry, days, seed, activity levels), the workload flavour, the
allocation policy, and the cache/image format versions
(:data:`FORMAT_VERSION`).  Change any input — or upgrade to a release
whose on-disk format differs — and the key changes, so stale entries
are simply never read again.  The full key payload is also stored
*inside* each entry and compared on load, so even a hash collision (or
a hand-edited file) falls back to a recompute instead of a wrong
answer.

Location and switches
---------------------

* default directory: ``.repro-cache/`` under the current directory;
* ``REPRO_CACHE_DIR=/path`` (env) or ``--cache-dir`` (CLI) move it;
* ``REPRO_CACHE=off`` (env) or ``--no-cache`` (CLI) disable it;
* ``repro-ffs cache ls`` / ``repro-ffs cache clear`` inspect and drop it.

The store is best-effort: unreadable, corrupt, or unwritable entries
degrade to a recompute, never to an error.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.cache.keys import CacheKey, make_key, replay_key
from repro.cache.store import SCHEMA, ArtifactCache, CacheEntry, FORMAT_VERSION

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "CacheKey",
    "FORMAT_VERSION",
    "SCHEMA",
    "ENV_DIR",
    "ENV_SWITCH",
    "DEFAULT_DIR",
    "make_key",
    "replay_key",
    "configure",
    "is_enabled",
    "directory",
    "store",
]

ENV_DIR = "REPRO_CACHE_DIR"
ENV_SWITCH = "REPRO_CACHE"
DEFAULT_DIR = ".repro-cache"

_OFF_VALUES = frozenset({"0", "off", "false", "no", "disabled"})

#: Process-wide overrides set by :func:`configure` (the CLI flags).
_enabled_override: Optional[bool] = None
_dir_override: Optional[str] = None


def configure(
    enabled: Optional[bool] = None, directory: Optional[str] = None
) -> None:
    """Install process-wide overrides (``None`` defers to the environment).

    The CLI calls this once per invocation from ``--no-cache`` /
    ``--cache-dir``; embedders and tests may call it directly.
    """
    global _enabled_override, _dir_override
    _enabled_override = enabled
    _dir_override = directory


def is_enabled() -> bool:
    """Whether the persistent cache is active for this process."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(ENV_SWITCH, "").strip().lower() not in _OFF_VALUES


def directory() -> Path:
    """The cache directory currently in effect (may not exist yet)."""
    if _dir_override is not None:
        return Path(_dir_override)
    return Path(os.environ.get(ENV_DIR) or DEFAULT_DIR)


def store() -> Optional[ArtifactCache]:
    """The active cache, or ``None`` when caching is disabled."""
    if not is_enabled():
        return None
    return ArtifactCache(directory())

"""The on-disk artifact store and the ReplayResult (de)serializer.

Layout: one JSON file per entry, named ``<hint>-<digest16>.json``, in a
flat directory.  Each file carries the schema tag, the *full* key
payload (verified on load), a creation timestamp, and the artifact
payload itself.  Writes are atomic (temp file + ``os.replace``) so a
crashed or concurrent run can never leave a half-written entry that a
later run would trust; concurrent writers of the same key both write
the same bytes, so last-replace-wins is safe.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.aging.replay import ReplayResult
from repro.obs import events as obs_events
from repro.analysis.timeline import DailySample, Timeline
from repro.cache.keys import CacheKey
from repro.ffs.image import filesystem_from_document, filesystem_to_document

from repro import schemas

SCHEMA = schemas.CACHE
#: Bump to invalidate every existing entry (part of every key's hash).
FORMAT_VERSION = 1

__all__ = ["ArtifactCache", "CacheEntry", "SCHEMA", "FORMAT_VERSION"]


@dataclass(frozen=True)
class CacheEntry:
    """One stored artifact, as listed by ``repro-ffs cache ls``."""

    path: Path
    created_at: float
    size_bytes: int
    key: Dict[str, object]


class ArtifactCache:
    """A persistent artifact store rooted at one directory."""

    def __init__(self, root: "Path | str"):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Generic entry plumbing
    # ------------------------------------------------------------------

    def path_for(self, key: CacheKey) -> Path:
        """Where an entry with ``key`` lives (whether or not it exists)."""
        return self.root / f"{key.hint}-{key.digest[:16]}.json"

    def _read_entry(self, key: CacheKey) -> Optional[Dict[str, object]]:
        """The entry document for ``key``, or None on any mismatch.

        Missing file, unreadable JSON, wrong schema, and — crucially —
        a stored key payload that differs from the requested one all
        count as misses: invalidation is automatic because nothing else
        ever trusts an entry.
        """
        path = self.path_for(key)
        try:
            with open(path) as fp:
                document = json.load(fp)
        except (OSError, ValueError):
            return None
        if document.get("schema") != SCHEMA:
            return None
        if document.get("key") != key.payload:
            return None
        return document

    def _write_entry(self, key: CacheKey, payload: Dict[str, object]) -> Optional[Path]:
        """Atomically persist ``payload`` under ``key`` (best-effort)."""
        path = self.path_for(key)
        document = {
            "schema": SCHEMA,
            "key": key.payload,
            # Manifest metadata only: created_at is excluded from the
            # content-address key, so the wall-clock stamp cannot perturb
            # cache hits or any simulated state.
            "created_at": time.time(),  # replint: disable=R001  (manifest metadata, outside the content-address key)
            "payload": payload,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as fp:
                json.dump(document, fp)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return None
        return path

    # ------------------------------------------------------------------
    # ReplayResult artifacts
    # ------------------------------------------------------------------

    def load_replay(
        self, key: CacheKey, verify: bool = False
    ) -> Optional[ReplayResult]:
        """The cached aged file system for ``key``, or None on a miss.

        ``verify`` runs the fsck-lite checker over the restored file
        system (also via ``REPRO_CACHE_VERIFY=1``); off by default
        because the image loader already re-marks every allocation and
        raises on inconsistency.
        """
        document = self._read_entry(key)
        metric = obs.metrics_or_none()
        events = obs.events_or_none()
        if document is None:
            if metric is not None:
                metric.counter("cache.misses").inc()
            if events is not None:
                events.emit(
                    obs_events.CACHE_MISS, hint=key.hint,
                    digest=key.digest[:16], reason="absent",
                )
            return None
        verify = verify or os.environ.get("REPRO_CACHE_VERIFY", "") == "1"
        try:
            result = _replay_from_document(document["payload"], verify=verify)
        except Exception:
            # A corrupt payload is a miss, not a failure mode.
            if metric is not None:
                metric.counter("cache.load_errors").inc()
            if events is not None:
                events.emit(
                    obs_events.CACHE_MISS, hint=key.hint,
                    digest=key.digest[:16], reason="corrupt",
                )
            return None
        if metric is not None:
            metric.counter("cache.hits").inc()
        if events is not None:
            events.emit(
                obs_events.CACHE_HIT, hint=key.hint, digest=key.digest[:16],
            )
        return result

    def save_replay(self, key: CacheKey, result: ReplayResult) -> Optional[Path]:
        """Persist one aged file system; returns its path (best-effort)."""
        path = self._write_entry(key, _replay_to_document(result))
        metric = obs.metrics_or_none()
        if metric is not None and path is not None:
            metric.counter("cache.writes").inc()
        return path

    # ------------------------------------------------------------------
    # Maintenance (the ``repro-ffs cache`` subcommands)
    # ------------------------------------------------------------------

    def entries(self) -> List[CacheEntry]:
        """All intact entries, ordered by file name."""
        found: List[CacheEntry] = []
        if not self.root.is_dir():
            return found
        for path in sorted(self.root.glob("*.json")):
            try:
                with open(path) as fp:
                    document = json.load(fp)
            except (OSError, ValueError):
                continue
            if document.get("schema") != SCHEMA:
                continue
            found.append(
                CacheEntry(
                    path=path,
                    created_at=float(document.get("created_at", 0.0)),
                    size_bytes=path.stat().st_size,
                    key=dict(document.get("key", {})),
                )
            )
        return found

    def clear(self) -> int:
        """Delete every entry (and stale temp file); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.glob("*.json")) + list(
            self.root.glob(".*.tmp")
        ):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ----------------------------------------------------------------------
# ReplayResult <-> document
# ----------------------------------------------------------------------


def _replay_to_document(result: ReplayResult) -> Dict[str, object]:
    return {
        "timeline": {
            "label": result.timeline.label,
            "samples": [
                [s.day, s.layout_score, s.utilization, s.live_files,
                 s.ops_applied]
                for s in result.timeline.samples
            ],
        },
        "ops_applied": result.ops_applied,
        "creates": result.creates,
        "deletes": result.deletes,
        "skipped_no_space": result.skipped_no_space,
        "bytes_written": result.bytes_written,
        "live_files": sorted(result.live_files.items()),
        "fs": filesystem_to_document(result.fs),
    }


def _replay_from_document(
    payload: Dict[str, object], verify: bool
) -> ReplayResult:
    timeline_doc = payload["timeline"]  # type: ignore[index]
    timeline = Timeline(label=timeline_doc["label"])  # type: ignore[index]
    for day, score, util, live, ops in timeline_doc["samples"]:  # type: ignore[index]
        timeline.add(
            DailySample(
                day=day, layout_score=score, utilization=util,
                live_files=live, ops_applied=ops,
            )
        )
    return ReplayResult(
        fs=filesystem_from_document(payload["fs"], verify=verify),  # type: ignore[arg-type]
        timeline=timeline,
        ops_applied=payload["ops_applied"],  # type: ignore[arg-type]
        creates=payload["creates"],  # type: ignore[arg-type]
        deletes=payload["deletes"],  # type: ignore[arg-type]
        skipped_no_space=payload["skipped_no_space"],  # type: ignore[arg-type]
        bytes_written=payload["bytes_written"],  # type: ignore[arg-type]
        live_files={int(fid): int(ino) for fid, ino in payload["live_files"]},  # type: ignore[union-attr]
    )

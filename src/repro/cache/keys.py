"""Content-hash keys for cached artifacts.

A key is the SHA-256 digest of a canonical JSON encoding of every input
that determines the artifact, plus the format versions of the layers
that serialize it.  Equal inputs hash equally across processes and
machines; any drift — one more simulated day, a different seed, a new
on-disk format — produces a different digest and therefore a miss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict

from repro.aging.generator import AgingConfig
from repro.aging.replay import ENGINE_VERSION
from repro.ffs import image


@dataclass(frozen=True)
class CacheKey:
    """A hashed cache key plus the payload that produced it."""

    #: Filename stem hint, e.g. ``"aged-small-realloc"`` — human-facing
    #: only; uniqueness comes from the digest.
    hint: str
    #: Hex SHA-256 of the canonical payload encoding.
    digest: str
    #: The full key payload, stored inside each entry and compared on
    #: load so collisions and hand-edits degrade to a recompute.
    payload: Dict[str, object]


def make_key(hint: str, **fields: object) -> CacheKey:
    """Build a key from JSON-serializable ``fields``."""
    from repro.cache.store import FORMAT_VERSION

    payload: Dict[str, object] = {"cache_format": FORMAT_VERSION}
    payload.update(fields)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return CacheKey(hint=hint, digest=digest, payload=payload)


def replay_key(
    preset_name: str,
    config: AgingConfig,
    workload: str,
    policy: str,
    label: str,
    faults: "Dict[str, object] | None" = None,
    backend: str = "disk",
) -> CacheKey:
    """Key for one aged file system (a ``ReplayResult``).

    ``workload`` names the flavour replayed (``"reconstructed"`` or
    ``"ground-truth"``); the preset name is a filename hint only — the
    digest covers the preset's actual parameters via ``config``.

    ``faults`` is the fault plan's canonical payload
    (:meth:`repro.faults.plan.FaultPlan.to_payload`) when the replay ran
    under injection, ``None`` for a clean replay.  It is part of the
    digest, so a cached no-fault aging can never be served for a faulted
    request (or vice versa).

    ``backend`` is the storage backend the run selected
    (:func:`repro.storage.current_backend`).  The aged *layout* is
    backend-independent, but the artifact belongs to the run
    configuration that produced it, so a ``--backend ssd`` run keeps
    its own cache lineage instead of silently aliasing the disk one.
    (Adding the field re-digests every key once; pre-existing entries
    simply miss and recompute, as any format bump does.)
    """
    return make_key(
        f"aged-{preset_name}-{workload}-{policy}",
        kind="replay",
        engine=ENGINE_VERSION,
        image_format=image.FORMAT_VERSION,
        aging=dataclasses.asdict(config),
        workload=workload,
        policy=policy,
        label=label,
        faults=faults,
        backend=backend,
    )

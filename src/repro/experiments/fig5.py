"""Figure 5: layout of the files created by the sequential benchmark.

For every size point of Figure 4, the average layout score of the files
the benchmark itself created on the aged file system.  Shape targets
from the paper: realloc produces better layout at all sizes, and perfect
layout (score 1.0) for files up to the 56 KB cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

from repro.analysis.report import render_chart, render_csv, render_table
from repro.experiments.config import get_preset
from repro.experiments import fig4
from repro.units import KB


@dataclass(frozen=True)
class Fig5Result:
    """Per-size layout score of the benchmark-created files."""

    sizes: List[int]
    ffs: Dict[int, Optional[float]]
    realloc: Dict[int, Optional[float]]

    def csv_text(self) -> str:
        """CSV of the layout-score series (size_bytes, ffs, realloc)."""
        rows = [(s, self.ffs[s], self.realloc[s]) for s in self.sizes]
        return render_csv(["size_bytes", "ffs", "realloc"], rows)

    def render(self) -> str:
        """ASCII version of Figure 5."""
        chart = render_chart(
            [
                ("FFS + Realloc", self.sizes,
                 [self.realloc[s] for s in self.sizes]),
                ("FFS", self.sizes, [self.ffs[s] for s in self.sizes]),
            ],
            title="Figure 5: File Fragmentation During Sequential I/O Benchmark",
            xlabel="File size (bytes, log scale)",
            ylabel="Layout score",
            log_x=True,
            y_range=(0.0, 1.0),
        )
        rows = [
            (f"{s // KB} KB", _fmt(self.ffs[s]), _fmt(self.realloc[s]))
            for s in self.sizes
        ]
        return chart + "\n" + render_table(
            ["File size", "FFS", "FFS + Realloc"], rows,
            title="\nLayout score of benchmark files",
        )


def _fmt(value: Optional[float]) -> str:
    return f"{value:.3f}" if value is not None else "--"


@lru_cache(maxsize=None)
def run(preset: str = "small") -> Fig5Result:
    """Collect the layout scores from the Figure 4 run (shared work)."""
    f4 = fig4.run(preset)
    return Fig5Result(
        sizes=f4.sizes,
        ffs={s: f4.results["ffs"][s].layout_score for s in f4.sizes},
        realloc={s: f4.results["realloc"][s].layout_score for s in f4.sizes},
    )

"""Ablations of the design choices DESIGN.md calls out.

Each ablation re-ages a file system with one knob changed and reports
the metric that knob is supposed to move:

* ``maxcontig`` sweep — how the cluster-size bound trades off final
  layout score (Section 2: the bound is normally the maximum transfer
  size of the disk system);
* cluster-fit strategy — the kernel's address-ordered first fit versus
  best fit, measured by final layout score *and* how much clusterable
  free space survives aging;
* realloc trigger — the stock "second block filled" gate versus an
  eager variant, measured by the layout score of two-chunk files (the
  Figure 3 quirk);
* indirect-block group switch — footnote 1 on versus off, measured by
  the layout score of files just past twelve blocks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.aging.replay import age_file_system
from repro.analysis.freespace import free_space_stats
from repro.analysis.layout import layout_by_block_count
from repro.analysis.report import render_table
from repro.experiments.config import artifacts, get_preset


def _age(preset_name: str, policy: str, **param_overrides):
    preset = get_preset(preset_name)
    params = dataclasses.replace(preset.params, **param_overrides)
    workload = artifacts(preset_name).reconstructed
    return age_file_system(workload, params=params, policy=policy)


@dataclass(frozen=True)
class MaxcontigResult:
    """Realloc outcomes per ``maxcontig`` value.

    The layout *score* is largely insensitive to the bound (any break
    counts once); what the bound actually controls is how long the
    extents are — and extent length is what turns into transfer size
    and throughput on the disk.
    """

    scores: Dict[int, float]
    mean_extent_blocks: Dict[int, float]

    def render(self) -> str:
        """Text table of the study's results."""
        rows = [
            (str(v), f"{self.scores[v]:.3f}", f"{self.mean_extent_blocks[v]:.2f}")
            for v in sorted(self.scores)
        ]
        return render_table(
            ["maxcontig (blocks)", "final layout score", "mean extent (blocks)"],
            rows,
            title="Ablation: cluster-size bound (realloc policy)",
        )


def _mean_extent_blocks(fs) -> float:
    """Mean physical extent length over multi-chunk files, in blocks."""
    from repro.disk.request import extents_of_blocks

    total_blocks = total_extents = 0
    for inode in fs.files():
        chunks = inode.data_block_list()
        if len(chunks) < 2:
            continue
        extents = extents_of_blocks(chunks, fs.params.block_size)
        total_blocks += len(chunks)
        total_extents += len(extents)
    return total_blocks / total_extents if total_extents else 0.0


def run_maxcontig_sweep(
    preset: str = "small", values: Tuple[int, ...] = (2, 4, 7, 12, 16)
) -> MaxcontigResult:
    """Age under realloc for each cluster-size bound."""
    scores: Dict[int, float] = {}
    extents: Dict[int, float] = {}
    for value in values:
        result = _age(preset, "realloc", maxcontig=value)
        scores[value] = result.timeline.final_score()
        extents[value] = _mean_extent_blocks(result.fs)
    return MaxcontigResult(scores=scores, mean_extent_blocks=extents)


@dataclass(frozen=True)
class ClusterFitResult:
    """First-fit vs. best-fit relocation targets."""

    final_scores: Dict[str, float]
    clusterable: Dict[str, float]

    def render(self) -> str:
        """Text table of the study's results."""
        rows = [
            (
                fit,
                f"{self.final_scores[fit]:.3f}",
                f"{self.clusterable[fit]:.0%}",
            )
            for fit in sorted(self.final_scores)
        ]
        return render_table(
            ["cluster fit", "final layout score", "clusterable free space"],
            rows,
            title="Ablation: relocation target choice (realloc policy)",
        )


def run_cluster_fit_ablation(preset: str = "small") -> ClusterFitResult:
    """Compare the kernel's first fit against best fit."""
    final_scores: Dict[str, float] = {}
    clusterable: Dict[str, float] = {}
    for fit in ("firstfit", "bestfit"):
        result = _age(preset, "realloc", cluster_fit=fit)
        final_scores[fit] = result.timeline.final_score()
        clusterable[fit] = free_space_stats(result.fs).clusterable_fraction
    return ClusterFitResult(final_scores=final_scores, clusterable=clusterable)


@dataclass(frozen=True)
class TriggerResult:
    """Stock vs. eager realloc trigger, by small-file layout."""

    two_chunk: Dict[str, Optional[float]]
    final_scores: Dict[str, float]

    def render(self) -> str:
        """Text table of the study's results."""
        rows = [
            (
                name,
                _fmt(self.two_chunk[name]),
                f"{self.final_scores[name]:.3f}",
            )
            for name in sorted(self.two_chunk)
        ]
        return render_table(
            ["trigger", "two-chunk layout score", "final aggregate"],
            rows,
            title="Ablation: realloc trigger point (the two-block quirk)",
        )


def run_trigger_ablation(preset: str = "small") -> TriggerResult:
    """Measure what the second-block trigger gate costs two-block files."""
    two_chunk: Dict[str, Optional[float]] = {}
    final_scores: Dict[str, float] = {}
    for policy in ("realloc", "realloc-eager"):
        result = _age(preset, policy)
        by_chunks = layout_by_block_count(result.fs.files())
        two_chunk[policy] = by_chunks.get(2)
        final_scores[policy] = result.timeline.final_score()
    return TriggerResult(two_chunk=two_chunk, final_scores=final_scores)


@dataclass(frozen=True)
class IndirectResult:
    """Footnote-1 group switch on vs. off.

    The layout score barely shows the switch (a one-block break either
    way); the real cost is the inter-group *seek* — so the metric is the
    104 KB read-throughput dip of Figure 4: throughput at 104 KB as a
    fraction of throughput at 96 KB.  With the switch ablated away the
    dip should largely disappear.
    """

    dip_ratio: Dict[str, float]
    read_104k: Dict[str, float]
    final_scores: Dict[str, float]

    def render(self) -> str:
        """Text table of the study's results."""
        from repro.units import MB

        rows = [
            (
                name,
                f"{self.read_104k[name] / MB:.2f} MB/s",
                f"{self.dip_ratio[name]:.2f}",
                f"{self.final_scores[name]:.3f}",
            )
            for name in sorted(self.dip_ratio)
        ]
        return render_table(
            [
                "indirect placement",
                "104 KB read",
                "104/96 KB ratio",
                "final aggregate",
            ],
            rows,
            title="Ablation: indirect-block cylinder-group switch",
        )


def run_indirect_ablation(preset: str = "small") -> IndirectResult:
    """Measure the mandatory 13th-block seek via the 104 KB dip."""
    import copy

    from repro.bench.sequential import SequentialIOBenchmark
    from repro.bench.timing import BenchmarkRunner
    from repro.units import KB

    p = get_preset(preset)
    dip_ratio: Dict[str, float] = {}
    read_104k: Dict[str, float] = {}
    final_scores: Dict[str, float] = {}
    for label, switch in (("switch (stock)", True), ("stay home", False)):
        result = _age(preset, "realloc", indirect_switches_cg=switch)
        final_scores[label] = result.timeline.final_score()
        throughput = {}
        for size in (96 * KB, 104 * KB):
            fs = copy.deepcopy(result.fs)
            bench = SequentialIOBenchmark(
                fs,
                total_bytes=min(p.bench_total_bytes, 4 * 1024 * KB),
                runner=BenchmarkRunner(3),
            )
            throughput[size] = bench.run(size).read_throughput.mean
        read_104k[label] = throughput[104 * KB]
        dip_ratio[label] = throughput[104 * KB] / throughput[96 * KB]
    return IndirectResult(
        dip_ratio=dip_ratio, read_104k=read_104k, final_scores=final_scores
    )


def _fmt(value: Optional[float]) -> str:
    return f"{value:.3f}" if value is not None else "--"


@dataclass(frozen=True)
class FallbackResult:
    """Original vs. run-aware fallback vs. full reallocation.

    Separates realloc's benefit into "place better initially" and
    "move blocks afterwards".
    """

    final_scores: Dict[str, float]

    def render(self) -> str:
        """Text table of the study's results."""
        rows = [
            (name, f"{self.final_scores[name]:.3f}")
            for name in ("ffs", "ffs-smart", "realloc")
        ]
        return render_table(
            ["policy", "final layout score"], rows,
            title="Ablation: run-aware fallback vs. reallocation",
        )


def run_fallback_ablation(preset: str = "small") -> FallbackResult:
    """Age under the original, smart-fallback, and realloc policies."""
    final_scores = {
        policy: _age(preset, policy).timeline.final_score()
        for policy in ("ffs", "ffs-smart", "realloc")
    }
    return FallbackResult(final_scores=final_scores)

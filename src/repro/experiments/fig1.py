"""Figure 1: aggregate layout score over time — real vs. simulated.

The paper validates its aging methodology by comparing the artificially
aged file system against the original: the simulated system ends *less*
fragmented (0.77 vs. 0.68) because the reconstructed workload misses
activity the snapshots could not capture, but the two curves share their
contours.

In the reproduction, "Real" is the ground-truth workload (with the
short-lived churn and chunked interleaved writes the snapshots cannot
see) replayed under the original policy, and "Simulated" is the
snapshot-reconstructed workload replayed the same way.  The same two
qualitative facts must hold: the simulated curve sits at or above the
real one, and both decline over the simulated period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_chart, render_csv
from repro.analysis.timeline import Timeline
from repro.experiments.config import aged, aged_real


@dataclass(frozen=True)
class Fig1Result:
    """The two daily layout-score series."""

    real: Timeline
    simulated: Timeline

    @property
    def final_gap(self) -> float:
        """Simulated minus real final score (paper: 0.77 - 0.68 = +0.09)."""
        return self.simulated.final_score() - self.real.final_score()

    def csv_text(self) -> str:
        """CSV of the two series (day, simulated, real)."""
        real_by_day = {s.day: s.layout_score for s in self.real.samples}
        rows = [
            (s.day, s.layout_score, real_by_day.get(s.day))
            for s in self.simulated.samples
        ]
        return render_csv(["day", "simulated", "real"], rows)

    def render(self) -> str:
        """ASCII version of Figure 1."""
        chart = render_chart(
            [
                ("Simulated", self.simulated.days(), self.simulated.scores()),
                ("Real", self.real.days(), self.real.scores()),
            ],
            title="Figure 1: Aggregate Layout Score Over Time — Real vs. Simulated",
            xlabel="Time (days)",
            ylabel="Aggregate layout score",
            y_range=(0.0, 1.0),
        )
        summary = (
            f"\n  final scores: simulated={self.simulated.final_score():.3f} "
            f"real={self.real.final_score():.3f} (paper: 0.77 vs 0.68)"
        )
        return chart + summary


def run(preset: str = "small") -> Fig1Result:
    """Build both curves for ``preset``."""
    return Fig1Result(
        real=aged_real(preset).timeline,
        simulated=aged(preset, "ffs").timeline,
    )

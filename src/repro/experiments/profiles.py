"""Workload-profile study: the paper's Section 6 future work, executed.

For each usage-pattern profile (home, news, database, pc) this
experiment builds an aging workload, ages a file system under both
allocation policies, and reports the final layout scores and realloc's
fragmentation improvement — answering the question the paper poses:
which file-system design parameters matter for which workload class?
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

import dataclasses

from repro.aging.generator import AgingConfig, build_workloads
from repro.aging.profiles import PROFILE_BYTES_PER_INODE, PROFILES
from repro.aging.replay import age_file_system
from repro.analysis.freespace import free_space_stats
from repro.analysis.report import render_table
from repro.experiments.config import get_preset


@dataclass(frozen=True)
class ProfileOutcome:
    """Both policies' results for one workload profile."""

    ffs_final: float
    realloc_final: float
    improvement: float
    utilization: float
    live_files: int
    clusterable_free: float


@dataclass(frozen=True)
class ProfilesResult:
    """Outcomes for every profile."""

    outcomes: Dict[str, ProfileOutcome]

    def render(self) -> str:
        """Text table of the study's results."""
        rows = []
        for name in sorted(self.outcomes):
            o = self.outcomes[name]
            rows.append(
                (
                    name,
                    f"{o.ffs_final:.3f}",
                    f"{o.realloc_final:.3f}",
                    f"{o.improvement:.0%}",
                    f"{o.utilization:.0%}",
                    str(o.live_files),
                )
            )
        return render_table(
            [
                "profile",
                "FFS",
                "FFS + Realloc",
                "frag. improvement",
                "utilization",
                "files",
            ],
            rows,
            title=(
                "Workload profiles (Section 6 future work): final "
                "aggregate layout scores"
            ),
        )


@lru_cache(maxsize=None)
def run(preset: str = "small") -> ProfilesResult:
    """Age each profile's workload under both policies."""
    p = get_preset(preset)
    outcomes: Dict[str, ProfileOutcome] = {}
    for name, levels in PROFILES.items():
        # Each profile gets the inode density an administrator would
        # have chosen for it (``newfs -i``).
        params = dataclasses.replace(
            p.params, bytes_per_inode=PROFILE_BYTES_PER_INODE[name]
        )
        config = AgingConfig(
            params=params, days=p.days, seed=p.seed, levels=levels
        )
        workloads = build_workloads(config)
        ffs = age_file_system(
            workloads.reconstructed, params=params, policy="ffs"
        )
        realloc = age_file_system(
            workloads.reconstructed, params=params, policy="realloc"
        )
        outcomes[name] = ProfileOutcome(
            ffs_final=ffs.timeline.final_score(),
            realloc_final=realloc.timeline.final_score(),
            improvement=realloc.timeline.fragmentation_improvement_over(
                ffs.timeline
            ),
            utilization=ffs.fs.utilization(),
            live_files=len(ffs.fs.files()),
            clusterable_free=free_space_stats(ffs.fs).clusterable_fraction,
        )
    return ProfilesResult(outcomes=outcomes)

"""Empty vs. aged performance — the claim that motivates the paper.

The introduction cites [Seltzer95]: "UNIX file systems that are more
than two years old perform as much as 15% worse than comparable empty
file systems", and notes that clustering measurements on *empty* file
systems represent best-case behaviour.  This experiment runs the
sequential I/O benchmark on an empty file system and on the aged one,
for both policies, and reports the degradation — realloc's pitch is
precisely that it keeps the aged file system close to its empty-disk
performance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from repro.analysis.report import render_table
from repro.bench.sequential import SequentialIOBenchmark
from repro.bench.timing import BenchmarkRunner
from repro.experiments.config import aged_fs_copy, get_preset
from repro.ffs.filesystem import FileSystem
from repro.units import KB, MB


@dataclass(frozen=True)
class EmptyVsAgedResult:
    """Read throughput on empty vs. aged file systems, per policy."""

    sizes: List[int]
    #: policy -> size -> (empty bytes/s, aged bytes/s)
    throughput: Dict[str, Dict[int, "tuple[float, float]"]]

    def degradation(self, policy: str, size: int) -> float:
        """Fractional read-throughput loss from aging."""
        empty, aged = self.throughput[policy][size]
        return (empty - aged) / empty if empty else 0.0

    def mean_degradation(self, policy: str) -> float:
        """Average degradation across the size sweep."""
        values = [self.degradation(policy, s) for s in self.sizes]
        return sum(values) / len(values) if values else 0.0

    def render(self) -> str:
        """Text table of the study's results."""
        rows = []
        for size in self.sizes:
            row = [f"{size // KB} KB"]
            for policy in ("ffs", "realloc"):
                empty, aged = self.throughput[policy][size]
                row.extend(
                    [
                        f"{empty / MB:.2f}",
                        f"{aged / MB:.2f}",
                        f"{self.degradation(policy, size):+.0%}",
                    ]
                )
            rows.append(tuple(row))
        table = render_table(
            [
                "size",
                "FFS empty", "FFS aged", "loss",
                "realloc empty", "realloc aged", "loss",
            ],
            rows,
            title="Empty vs. aged sequential-read throughput (MB/sec)",
        )
        summary = (
            f"\n  mean aging penalty: FFS "
            f"{self.mean_degradation('ffs'):.0%}, realloc "
            f"{self.mean_degradation('realloc'):.0%} "
            f"([Seltzer95] measured up to 15% on >2-year-old systems)"
        )
        return table + summary


@lru_cache(maxsize=None)
def run(preset: str = "small") -> EmptyVsAgedResult:
    """Benchmark empty and aged file systems under both policies."""
    p = get_preset(preset)
    sizes = [
        s for s in (16 * KB, 56 * KB, 96 * KB, 256 * KB, 1024 * KB)
        if s <= p.bench_total_bytes
    ]
    runner = BenchmarkRunner(p.bench_repetitions)
    throughput: Dict[str, Dict[int, "tuple[float, float]"]] = {}
    for policy in ("ffs", "realloc"):
        throughput[policy] = {}
        for size in sizes:
            empty_fs = FileSystem(p.params, policy=policy)
            empty = SequentialIOBenchmark(
                empty_fs, total_bytes=p.bench_total_bytes, runner=runner
            ).run(size)
            aged_fs = aged_fs_copy(preset, policy)
            aged = SequentialIOBenchmark(
                aged_fs, total_bytes=p.bench_total_bytes, runner=runner
            ).run(size)
            throughput[policy][size] = (
                empty.read_throughput.mean,
                aged.read_throughput.mean,
            )
    return EmptyVsAgedResult(sizes=sizes, throughput=throughput)

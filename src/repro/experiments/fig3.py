"""Figure 3: layout score as a function of file size on the aged FSes.

Shape targets from Section 4:

* realloc beats FFS at every size;
* realloc is near-optimal below the cluster size (56 KB);
* under realloc, *two-block files* score lower than slightly larger
  files (the quirk: reallocation is not invoked until the second block
  is filled);
* both systems dip once files pass twelve blocks (96 KB): the thirteenth
  block sits behind an indirect block in a different cylinder group, a
  mandatory non-optimal block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.layout import (
    default_size_bins,
    layout_by_size_bins,
    layout_by_block_count,
)
from repro.analysis.report import render_chart, render_csv, render_table
from repro.experiments.config import aged, get_preset
from repro.units import KB


@dataclass(frozen=True)
class Fig3Result:
    """Layout score per size bin for both policies."""

    bins: List[int]
    ffs: Dict[int, Optional[float]]
    realloc: Dict[int, Optional[float]]
    #: Finer-grained score by chunk count, where the 2-block quirk lives.
    ffs_by_chunks: Dict[int, Optional[float]]
    realloc_by_chunks: Dict[int, Optional[float]]

    def csv_text(self) -> str:
        """CSV of the size-bin series (size_bytes, ffs, realloc)."""
        rows = [(b, self.ffs[b], self.realloc[b]) for b in self.bins]
        return render_csv(["size_bytes", "ffs", "realloc"], rows)

    def render(self) -> str:
        """ASCII version of Figure 3 plus the per-chunk-count table."""
        chart = render_chart(
            [
                ("FFS + Realloc", self.bins,
                 [self.realloc[b] for b in self.bins]),
                ("FFS", self.bins, [self.ffs[b] for b in self.bins]),
            ],
            title="Figure 3: Layout Score as a Function of File Size (aged FS)",
            xlabel="File size (bytes, log scale)",
            ylabel="Layout score",
            log_x=True,
            y_range=(0.0, 1.0),
        )
        rows = []
        for b in self.bins:
            rows.append(
                (
                    f"{b // KB} KB",
                    _fmt(self.ffs[b]),
                    _fmt(self.realloc[b]),
                )
            )
        table = render_table(
            ["File size", "FFS", "FFS + Realloc"], rows,
            title="\nLayout score by size bin",
        )
        return chart + "\n" + table


def _fmt(value: Optional[float]) -> str:
    return f"{value:.3f}" if value is not None else "--"


def run(preset: str = "small") -> Fig3Result:
    """Score the aged file populations by size."""
    p = get_preset(preset)
    largest = max(
        (inode.size for inode in aged(preset, "ffs").fs.files()),
        default=16 * KB,
    )
    bins = default_size_bins(largest=max(16 * KB, largest))
    ffs_files = aged(preset, "ffs").fs.files()
    realloc_files = aged(preset, "realloc").fs.files()
    return Fig3Result(
        bins=bins,
        ffs=layout_by_size_bins(ffs_files, bins),
        realloc=layout_by_size_bins(realloc_files, bins),
        ffs_by_chunks=layout_by_block_count(ffs_files),
        realloc_by_chunks=layout_by_block_count(realloc_files),
    )

"""Figure 4: sequential read/write throughput vs. file size.

The benchmark of Section 5.1 on both aged file systems, with the
raw-disk throughputs as reference lines.  Shape targets:

* realloc at or above FFS nearly everywhere;
* a sharp dip in every curve at 104 KB, where the first indirect block
  forces a cylinder-group switch;
* write throughput under realloc dropping after 64 KB (files larger
  than the maximum transfer lose a rotation between back-to-back
  writes);
* for large files, realloc's write throughput meeting or exceeding raw
  write throughput (imperfect layout turns lost rotations into cheaper
  short seeks).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from repro.analysis.report import render_chart, render_csv, render_table
from repro.bench.sequential import SequentialIOBenchmark, SequentialResult
from repro.bench.timing import BenchmarkRunner
from repro.disk.raw import raw_read_throughput, raw_write_throughput
from repro.experiments.config import aged_fs_copy, get_preset
from repro.units import KB, MB


@dataclass(frozen=True)
class Fig4Result:
    """Throughput series per policy plus the raw-disk reference."""

    sizes: List[int]
    results: Dict[str, Dict[int, SequentialResult]]  # policy -> size -> result
    raw_read: float
    raw_write: float

    def read_series(self, policy: str) -> List[float]:
        """Read throughput (bytes/s) per size for ``policy``."""
        return [self.results[policy][s].read_throughput.mean for s in self.sizes]

    def write_series(self, policy: str) -> List[float]:
        """Write throughput (bytes/s) per size for ``policy``."""
        return [self.results[policy][s].write_throughput.mean for s in self.sizes]

    def csv_text(self) -> str:
        """CSV of the throughput series in bytes/second."""
        rows = []
        for s in self.sizes:
            rows.append(
                (
                    s,
                    self.results["ffs"][s].read_throughput.mean,
                    self.results["realloc"][s].read_throughput.mean,
                    self.results["ffs"][s].write_throughput.mean,
                    self.results["realloc"][s].write_throughput.mean,
                    self.raw_read,
                    self.raw_write,
                )
            )
        return render_csv(
            [
                "size_bytes", "read_ffs", "read_realloc",
                "write_ffs", "write_realloc", "raw_read", "raw_write",
            ],
            rows,
        )

    def render(self) -> str:
        """ASCII version of both panels of Figure 4."""
        mb = [s / 1.0 for s in self.sizes]
        read_chart = render_chart(
            [
                ("Raw Read", mb, [self.raw_read / MB] * len(self.sizes)),
                ("FFS + Realloc", mb,
                 [v / MB for v in self.read_series("realloc")]),
                ("FFS", mb, [v / MB for v in self.read_series("ffs")]),
            ],
            title="Figure 4 (top): Sequential Read Performance (MB/sec)",
            xlabel="File size (bytes, log scale)",
            log_x=True,
        )
        write_chart = render_chart(
            [
                ("Raw Write", mb, [self.raw_write / MB] * len(self.sizes)),
                ("FFS + Realloc", mb,
                 [v / MB for v in self.write_series("realloc")]),
                ("FFS", mb, [v / MB for v in self.write_series("ffs")]),
            ],
            title="Figure 4 (bottom): Sequential Write Performance (MB/sec)",
            xlabel="File size (bytes, log scale)",
            log_x=True,
        )
        rows = []
        for s in self.sizes:
            rows.append(
                (
                    f"{s // KB} KB",
                    f"{self.results['ffs'][s].read_throughput.mean / MB:.2f}",
                    f"{self.results['realloc'][s].read_throughput.mean / MB:.2f}",
                    f"{self.results['ffs'][s].write_throughput.mean / MB:.2f}",
                    f"{self.results['realloc'][s].write_throughput.mean / MB:.2f}",
                )
            )
        table = render_table(
            ["File size", "read FFS", "read Realloc", "write FFS", "write Realloc"],
            rows,
            title="\nThroughput (MB/sec); raw read "
            f"{self.raw_read / MB:.2f}, raw write {self.raw_write / MB:.2f}",
        )
        return read_chart + "\n\n" + write_chart + "\n" + table


@lru_cache(maxsize=None)
def run(preset: str = "small") -> Fig4Result:
    """Run the sweep on private copies of both aged file systems."""
    p = get_preset(preset)
    runner = BenchmarkRunner(p.bench_repetitions)
    results: Dict[str, Dict[int, SequentialResult]] = {"ffs": {}, "realloc": {}}
    sizes = [s for s in p.bench_file_sizes if s <= p.bench_total_bytes]
    for policy in ("ffs", "realloc"):
        for size in sizes:
            fs = aged_fs_copy(preset, policy)
            bench = SequentialIOBenchmark(
                fs, total_bytes=p.bench_total_bytes, runner=runner
            )
            results[policy][size] = bench.run(size)
    return Fig4Result(
        sizes=sizes,
        results=results,
        raw_read=raw_read_throughput(p.bench_total_bytes),
        raw_write=raw_write_throughput(p.bench_total_bytes),
    )

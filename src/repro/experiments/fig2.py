"""Figure 2: aggregate layout score over time — FFS vs. FFS+realloc.

The paper's central result: two file systems aged with the identical
workload, differing only in allocation policy.  The realloc system stays
less fragmented for the whole simulation; the gap *grows* over time,
from 0.026 after the first day (0.950 vs 0.924) to 0.133 at the end
(0.899 vs 0.766) — i.e. realloc leaves only 10.1% of blocks non-optimal
versus 23.4%, a 56.8% reduction in fragmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_chart, render_csv
from repro.analysis.timeline import Timeline
from repro.experiments.config import aged


@dataclass(frozen=True)
class Fig2Result:
    """Daily layout scores under the two policies."""

    ffs: Timeline
    realloc: Timeline

    @property
    def first_day_gap(self) -> float:
        """Realloc minus FFS on day one (paper: +0.026)."""
        return self.realloc.first_day_score() - self.ffs.first_day_score()

    @property
    def final_gap(self) -> float:
        """Realloc minus FFS at the end (paper: +0.133)."""
        return self.realloc.final_score() - self.ffs.final_score()

    @property
    def fragmentation_improvement(self) -> float:
        """Relative reduction in non-optimal blocks (paper: 56.8%)."""
        return self.realloc.fragmentation_improvement_over(self.ffs)

    def csv_text(self) -> str:
        """CSV of the two series (day, ffs, realloc)."""
        realloc_by_day = {s.day: s.layout_score for s in self.realloc.samples}
        rows = [
            (s.day, s.layout_score, realloc_by_day.get(s.day))
            for s in self.ffs.samples
        ]
        return render_csv(["day", "ffs", "realloc"], rows)

    def render(self) -> str:
        """ASCII version of Figure 2."""
        chart = render_chart(
            [
                ("FFS + Realloc", self.realloc.days(), self.realloc.scores()),
                ("FFS", self.ffs.days(), self.ffs.scores()),
            ],
            title="Figure 2: Aggregate Layout Score Over Time — FFS vs. realloc",
            xlabel="Time (days)",
            ylabel="Aggregate layout score",
            y_range=(0.0, 1.0),
        )
        summary = (
            f"\n  final: realloc={self.realloc.final_score():.3f} "
            f"ffs={self.ffs.final_score():.3f} "
            f"gap={self.final_gap:+.3f} (paper: 0.899 vs 0.766, +0.133)"
            f"\n  fragmentation improvement: "
            f"{self.fragmentation_improvement:.1%} (paper: 56.8%)"
        )
        return chart + summary


def run(preset: str = "small") -> Fig2Result:
    """Age under both policies and collect the curves."""
    return Fig2Result(
        ffs=aged(preset, "ffs").timeline,
        realloc=aged(preset, "realloc").timeline,
    )

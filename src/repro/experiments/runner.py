"""Run-all entry point for the experiment suite.

``run_all`` executes every experiment at one preset and returns the
rendered text blocks in paper order; the CLI and the EXPERIMENTS.md
generator both sit on top of it.  ``iter_all`` is the streaming form:
it yields each experiment's result (with its wall time) as soon as it
completes, so the CLI can print progressively instead of sitting
silent until the whole suite finishes.

Every experiment runs inside a telemetry span (``experiment.<name>``)
when :mod:`repro.obs` is enabled; its wall time is also published as a
gauge so run manifests record where the time went.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from typing import Callable, Dict, Iterator, List, Tuple

from repro import obs
from repro.obs import events as obs_events
from repro.experiments import (
    empty_vs_aged,
    flash,
    lfs_compare,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    rotdelay,
    table1,
    table2,
)

#: Experiment registry, in the paper's presentation order.
EXPERIMENTS: Dict[str, Callable[[str], object]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "table2": table2.run,
    "fig6": fig6.run,
    # Beyond the paper's evaluation section:
    "empty-vs-aged": empty_vs_aged.run,
    "rotdelay": rotdelay.run,
    "lfs": lfs_compare.run,
}

#: Experiments runnable by name but excluded from ``all`` — ``all``'s
#: roster (and therefore its stdout) is pinned by tests and compared
#: across revisions, so additions land here instead.
EXTRA_EXPERIMENTS: Dict[str, Callable[[str], object]] = {
    "flash": flash.run,
}


def timed_call(
    label: str,
    call: Callable[[], object],
    preset: "str | None" = None,
) -> Tuple[object, float]:
    """Run ``call`` under the suite's standard telemetry envelope.

    One span named ``label``, one profiler phase, and a
    ``<label>.wall_s`` gauge — or none of them when telemetry is off,
    in which case only the (always-measured) wall clock remains.  The
    experiment runner and the chaos harness (:mod:`repro.faults.chaos`)
    both use this envelope, so their traces read uniformly.
    """
    tr = obs.tracer_or_none()
    prof = obs.profiler_or_none()
    start = time.perf_counter()
    if tr is None and prof is None:
        result = call()
        return result, time.perf_counter() - start
    with ExitStack() as stack:
        if tr is not None:
            stack.enter_context(tr.span(label, preset=preset))
        if prof is not None:
            stack.enter_context(prof.phase(label))
        result = call()
    elapsed = time.perf_counter() - start
    m = obs.metrics_or_none()
    if m is not None:
        m.gauge(f"{label}.wall_s").set(elapsed)
    return result, elapsed


def run_one_timed(name: str, preset: str = "small") -> Tuple[object, float]:
    """Run a single experiment; returns ``(result, wall_seconds)``.

    The wall time is measured unconditionally — telemetry being off
    must not cost the CLI its timing report — and additionally
    published as a span + gauge when telemetry is on.
    """
    registry = {**EXPERIMENTS, **EXTRA_EXPERIMENTS}
    try:
        runner = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(registry)}"
        ) from None
    ev = obs.events_or_none()
    if ev is not None:
        ev.emit(obs_events.EXPERIMENT_START, name=name, preset=preset)
    result, elapsed = timed_call(
        f"experiment.{name}", lambda: runner(preset), preset=preset
    )
    if ev is not None:
        ev.emit(
            obs_events.EXPERIMENT_END, name=name, preset=preset,
            wall_s=round(elapsed, 4),
        )
    return result, elapsed


def run_one(name: str, preset: str = "small") -> object:
    """Run a single experiment by registry name."""
    result, _elapsed = run_one_timed(name, preset)
    return result


def iter_all(preset: str = "small") -> Iterator[Tuple[str, object, float]]:
    """Run the suite in paper order, yielding as each experiment ends.

    Yields ``(name, result, wall_seconds)`` tuples; consumers that want
    progressive output (the CLI) render each one on arrival.
    """
    for name in EXPERIMENTS:
        result, elapsed = run_one_timed(name, preset)
        yield name, result, elapsed


def iter_all_rendered(
    preset: str = "small", jobs: int = 1
) -> Iterator[Tuple[str, str, float]]:
    """Like :meth:`iter_all` but yields rendered text blocks.

    This is the form the CLI and :func:`render_all` consume, because it
    is the common denominator of the serial and parallel paths: a
    parallel worker ships text (results hold whole file systems, which
    are not worth pickling back).  ``jobs > 1`` fans the suite across
    worker processes via :mod:`repro.parallel`; the yielded stream is
    identical either way, in paper order.
    """
    if jobs > 1:
        from repro.parallel import iter_all_parallel

        yield from iter_all_parallel(preset, jobs)
        return
    for name, result, elapsed in iter_all(preset):
        yield name, result.render(), elapsed  # type: ignore[attr-defined]


def run_all(preset: str = "small") -> List[Tuple[str, object]]:
    """Run every experiment at ``preset`` in paper order."""
    return [(name, result) for name, result, _elapsed in iter_all(preset)]


def experiment_header(name: str, preset: str) -> str:
    """The banner printed above one experiment's rendered block."""
    return f"{'=' * 78}\n{name} (preset: {preset})\n{'=' * 78}"


def slowest_summary(times: Dict[str, float], top: int = 3) -> str:
    """One-line "where did the time go" summary of a suite run."""
    ranked = sorted(times.items(), key=lambda item: (-item[1], item[0]))[:top]
    body = ", ".join(f"{name} {elapsed:.1f}s" for name, elapsed in ranked)
    return f"slowest: {body} (total {sum(times.values()):.1f}s)"


def render_all(preset: str = "small", jobs: int = 1) -> str:
    """Rendered text of the full suite, ready for the terminal."""
    blocks = []
    for name, text, _elapsed in iter_all_rendered(preset, jobs=jobs):
        blocks.append(experiment_header(name, preset))
        blocks.append(text)
    return "\n\n".join(blocks)

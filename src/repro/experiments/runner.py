"""Run-all entry point for the experiment suite.

``run_all`` executes every experiment at one preset and returns the
rendered text blocks in paper order; the CLI and the EXPERIMENTS.md
generator both sit on top of it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    empty_vs_aged,
    lfs_compare,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    rotdelay,
    table1,
    table2,
)

#: Experiment registry, in the paper's presentation order.
EXPERIMENTS: Dict[str, Callable[[str], object]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "table2": table2.run,
    "fig6": fig6.run,
    # Beyond the paper's evaluation section:
    "empty-vs-aged": empty_vs_aged.run,
    "rotdelay": rotdelay.run,
    "lfs": lfs_compare.run,
}


def run_one(name: str, preset: str = "small") -> object:
    """Run a single experiment by registry name."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(preset)


def run_all(preset: str = "small") -> List[Tuple[str, object]]:
    """Run every experiment at ``preset`` in paper order."""
    return [(name, runner(preset)) for name, runner in EXPERIMENTS.items()]


def render_all(preset: str = "small") -> str:
    """Rendered text of the full suite, ready for the terminal."""
    blocks = []
    for name, result in run_all(preset):
        blocks.append(f"{'=' * 78}\n{name} (preset: {preset})\n{'=' * 78}")
        blocks.append(result.render())  # type: ignore[attr-defined]
    return "\n\n".join(blocks)

"""Three-way aging comparison: FFS vs. FFS+realloc vs. LFS.

The paper positions realloc as FFS's answer to log-structured file
systems ([Seltzer93], [Seltzer95]); its future work names LFS as the
next system to age.  This experiment does it: the same reconstructed
ten-month workload ages all three file systems, and the aged systems
are compared on

* the daily aggregate layout-score trajectory,
* read throughput over the hot-file set (the Table 2 measurement), and
* the *write tax* each design pays — synchronous metadata and
  fragmentation for FFS, cleaner copies (write amplification) for LFS.

Expected shape, from the logging-vs-clustering literature: LFS keeps
the best read layout for once-written files (everything it writes is
sequential in the log) but pays for it in cleaner bandwidth, while
realloc approaches LFS's layout without any background copying.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from repro.analysis.report import render_chart, render_table
from repro.analysis.timeline import Timeline
from repro.bench.timing import BenchmarkRunner
from repro.disk.model import IOKind
from repro.disk.request import extents_of_blocks
from repro.experiments.config import aged, artifacts, get_preset
from repro.lfs.params import LFSParams
from repro.lfs.replay import age_lfs
from repro.storage import make_storage
from repro.units import MB


@dataclass(frozen=True)
class LfsCompareResult:
    """Aging outcomes for the three systems."""

    timelines: Dict[str, Timeline]
    hot_read_throughput: Dict[str, float]
    write_amplification: float
    cleanings: int

    def final_scores(self) -> Dict[str, float]:
        """Final aggregate layout score per system."""
        return {name: tl.final_score() for name, tl in self.timelines.items()}

    def render(self) -> str:
        """Chart + summary table of the comparison."""
        chart = render_chart(
            [
                (name, tl.days(), tl.scores())
                for name, tl in self.timelines.items()
            ],
            title="Aggregate layout score over time: FFS vs. realloc vs. LFS",
            xlabel="Time (days)",
            ylabel="Aggregate layout score",
            y_range=(0.0, 1.0),
        )
        rows = []
        for name, tl in self.timelines.items():
            rows.append(
                (
                    name,
                    f"{tl.final_score():.3f}",
                    f"{self.hot_read_throughput[name] / MB:.2f} MB/s",
                    f"{self.write_amplification:.2f}x" if name == "LFS" else "1.00x",
                )
            )
        table = render_table(
            ["system", "final layout", "hot-file read", "write amplification"],
            rows,
            title="\nAged file systems compared",
        )
        note = (
            f"\n  LFS ran its cleaner {self.cleanings} times; its extra "
            f"writes are the price of the layout it keeps."
        )
        return chart + "\n" + table + note


@lru_cache(maxsize=None)
def run(preset: str = "small") -> LfsCompareResult:
    """Age all three systems with the identical workload and compare."""
    p = get_preset(preset)
    workload = artifacts(preset).reconstructed
    runner = BenchmarkRunner(p.bench_repetitions)
    window = 0.1 * p.days

    timelines: Dict[str, Timeline] = {}
    hot_tp: Dict[str, float] = {}

    # The two FFS variants come from the shared cache.
    for name, policy in (("FFS", "ffs"), ("FFS + Realloc", "realloc")):
        result = aged(preset, policy)
        timelines[name] = result.timeline
        hot_tp[name] = _hot_read_throughput(
            result.fs.files_modified_since(_cutoff(result.fs, window)),
            p.params.block_size,
            runner,
        )

    lfs_params = LFSParams(size_bytes=p.params.actual_size_bytes)
    lfs_result = age_lfs(workload, params=lfs_params)
    timelines["LFS"] = lfs_result.timeline
    hot_tp["LFS"] = _hot_read_throughput(
        lfs_result.fs.files_modified_since(_cutoff(lfs_result.fs, window)),
        lfs_params.block_size,
        runner,
    )
    return LfsCompareResult(
        timelines=timelines,
        hot_read_throughput=hot_tp,
        write_amplification=lfs_result.fs.write_amplification(),
        cleanings=lfs_result.fs.cleanings,
    )


def _cutoff(fs, window: float) -> float:
    files = fs.files()
    if not files:
        return 0.0
    return max(inode.mtime for inode in files) - window


def _hot_read_throughput(hot_files, block_size: int, runner) -> float:
    """Read the hot set's data extents and return mean bytes/second.

    File-system-agnostic: any object with ``data_block_list()`` and
    ``size`` participates, which is the point — the three systems are
    priced by the same disk model over their actual layouts.
    """
    hot = sorted(hot_files, key=lambda inode: inode.data_block_list()[:1])
    total = sum(
        len(inode.data_block_list()) * block_size for inode in hot
    )
    if total == 0:
        return 0.0

    def timed(angle: float) -> float:
        disk = make_storage(initial_angle=angle)
        for inode in hot:
            extents = extents_of_blocks(inode.data_block_list(), block_size)
            disk.transfer_extents(IOKind.READ, extents, block_size)
        return total / (disk.now_ms / 1000.0)

    return runner.measure(timed).mean

"""Table 1: the benchmark configuration.

Purely descriptive — it prints the hardware and file-system parameters
the rest of the suite uses, in the paper's three-column layout.  The
hardware column comes from :class:`~repro.disk.geometry.DiskGeometry`;
the file-system column from :class:`~repro.ffs.params.FSParams` at the
chosen preset (the ``paper`` preset reproduces Table 1 exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import render_table
from repro.disk.geometry import DiskGeometry
from repro.experiments.config import get_preset
from repro.units import fmt_size


@dataclass(frozen=True)
class Table1Result:
    """The configuration rows."""

    rows: List[Tuple[str, str]]

    def render(self) -> str:
        """Text rendering of Table 1."""
        return render_table(
            ["Parameter", "Value"], self.rows,
            title="Table 1: Benchmark Configuration",
        )


def run(preset: str = "paper") -> Table1Result:
    """Collect the configuration for ``preset``."""
    p = get_preset(preset)
    geo = DiskGeometry()
    params = p.params
    rows: List[Tuple[str, str]] = [
        ("Disk Type", "Seagate ST32430N (modelled)"),
        ("Disk Size", fmt_size(geo.capacity_bytes)),
        ("Rotational Speed", f"{geo.rpm} RPM"),
        ("Sector Size", f"{geo.sector_size} Bytes"),
        ("Cylinders", str(geo.cylinders)),
        ("Heads", str(geo.heads)),
        ("Average Sectors per Track", str(geo.sectors_per_track)),
        ("Track Buffer", fmt_size(geo.track_buffer_bytes)),
        ("Average Seek", f"{geo.seek_avg_ms:.0f} ms"),
        ("Max Transfer Size", fmt_size(geo.max_transfer_bytes)),
        ("Total Disk Space (file system)", fmt_size(params.actual_size_bytes)),
        ("Fragment Size", fmt_size(params.frag_size)),
        ("Block Size", fmt_size(params.block_size)),
        ("Max. Cluster Size", fmt_size(params.max_cluster_bytes)),
        ("Rotational Gap", str(params.rotdelay)),
        ("Cylinder Groups", str(params.ncg)),
        ("Inodes per Group", str(params.inodes_per_cg)),
        ("Free-Space Reserve (minfree)", f"{params.minfree:.0%}"),
    ]
    return Table1Result(rows=rows)

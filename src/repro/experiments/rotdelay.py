"""The rotational gap, before and after track buffers (Table 1's "0").

FFS's ``rotdelay`` parameter asks the allocator to leave a rotational
gap between a file's successive blocks, so that on a dumb disk driven
one block at a time, the next block arrives under the head right after
the host finishes processing the previous one.  Table 1 sets it to 0
because the benchmark drive has a track buffer and the kernel clusters
I/O — but *why* 0 is right is an experiment the paper leaves implicit.

This experiment runs it: a fresh file system laid out with rotational
gaps of 0..3 blocks, read two ways —

* **1985 mode** — one block per request with per-block host think time,
  on a bufferless drive (track buffer disabled);
* **1996 mode** — clustered transfers on the Table 1 drive.

The historical rationale appears on one diagonal (gapped layout wins in
1985 mode) and Table 1's choice on the other (contiguous layout wins in
1996 mode).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.analysis.report import render_table
from repro.bench.iomodel import FileIOPricer
from repro.bench.timing import BenchmarkRunner
from repro.disk.geometry import DiskGeometry
from repro.experiments.config import get_preset
from repro.ffs.filesystem import FileSystem
from repro.storage import make_storage
from repro.units import KB, MB


@dataclass(frozen=True)
class RotdelayResult:
    """Read throughput per (rotdelay, I/O mode)."""

    #: (rotdelay, mode) -> bytes/second; mode in {"1985", "1996"}
    throughput: Dict[Tuple[int, str], float]

    def winner(self, mode: str) -> int:
        """The rotdelay value with the higher throughput in ``mode``."""
        candidates = {
            rd: tp for (rd, m), tp in self.throughput.items() if m == mode
        }
        return max(candidates, key=candidates.get)

    def render(self) -> str:
        """Text table of the study's results."""
        gaps = sorted({rd for rd, _m in self.throughput})
        rows = []
        for rd in gaps:
            rows.append(
                (
                    str(rd),
                    f"{self.throughput[(rd, '1985')] / MB:.2f}",
                    f"{self.throughput[(rd, '1996')] / MB:.2f}",
                )
            )
        table = render_table(
            [
                "rotdelay (blocks)",
                "1985 mode (no buffer, block-at-a-time)",
                "1996 mode (track buffer, clustered)",
            ],
            rows,
            title="Rotational-gap layout vs. disk generation (read MB/sec)",
        )
        return table + (
            f"\n  winners: 1985 mode -> rotdelay {self.winner('1985')}, "
            f"1996 mode -> rotdelay {self.winner('1996')} "
            f"(Table 1 uses 0 for the track-buffer drive)"
        )


@lru_cache(maxsize=None)
def run(preset: str = "small", file_size: int = 96 * KB) -> RotdelayResult:
    """Measure both layouts under both disk generations."""
    p = get_preset(preset)
    runner = BenchmarkRunner(p.bench_repetitions)
    buffered = DiskGeometry()
    bufferless = dataclasses.replace(buffered, track_buffer_bytes=0)

    throughput: Dict[Tuple[int, str], float] = {}
    for rotdelay in (0, 1, 2, 3):
        params = dataclasses.replace(p.params, rotdelay=rotdelay)
        fs = FileSystem(params, policy="ffs")
        directory = fs.make_directory("bench")
        n_files = max(4, min(32, (2 * MB) // file_size))
        inos = [fs.create_file(directory, file_size) for _ in range(n_files)]
        total = sum(fs.inode(i).size for i in inos)

        def timed(angle: float, geometry, unclustered: bool) -> float:
            disk = make_storage(geometry, initial_angle=angle)
            pricer = FileIOPricer(fs, disk)
            for ino in inos:
                inode = fs.inode(ino)
                if unclustered:
                    pricer.read_file_data_unclustered(inode)
                else:
                    pricer.read_file_data(inode)
            return total / (disk.now_ms / 1000.0)

        throughput[(rotdelay, "1985")] = runner.measure(
            lambda a: timed(a, bufferless, True)
        ).mean
        throughput[(rotdelay, "1996")] = runner.measure(
            lambda a: timed(a, buffered, False)
        ).mean
    return RotdelayResult(throughput=throughput)

"""Experiment harness: one module per table/figure of the paper.

Every experiment module exposes ``run(preset) -> <Result>`` where the
result carries the numeric series plus a ``render()`` method producing
the text table/chart.  Heavy artifacts (workloads, aged file systems)
are cached per preset in :mod:`repro.experiments.config`, so running all
experiments ages each file system only once.

Index (see DESIGN.md for the full mapping):

========  ==========================================================
table1    benchmark configuration constants
fig1      aggregate layout score over time, real vs. simulated
fig2      aggregate layout score over time, FFS vs. FFS+realloc
fig3      layout score as a function of file size (aged file systems)
fig4      sequential read/write throughput vs. file size + raw disk
fig5      layout score of the sequential benchmark's files
table2    hot-file throughput and layout (recently modified files)
fig6      layout score of hot files vs. file size
========  ==========================================================
"""

from repro.experiments.config import PRESETS, Preset, get_preset

__all__ = ["PRESETS", "Preset", "get_preset"]

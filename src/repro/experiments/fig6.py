"""Figure 6: layout score of the hot files as a function of file size.

Plots the hot-file set's layout by size for both policies, alongside the
sequential-benchmark curves of Figure 5 for comparison.  The paper's
observations: under the original FFS the realistically created hot files
lay out *worse* than the benchmark files, but under realloc the hot
files match the benchmark files almost exactly — reallocation reaches
near-optimal layout however the files were created.  Two-block files are
again the worst case under realloc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.layout import default_size_bins, layout_by_size_bins
from repro.analysis.report import render_chart
from repro.bench.hotfiles import HotFileBenchmark
from repro.experiments import fig5
from repro.experiments.config import aged, get_preset
from repro.units import KB


@dataclass(frozen=True)
class Fig6Result:
    """Hot-file layout by size, plus the Figure 5 series for contrast."""

    bins: List[int]
    hot_ffs: Dict[int, Optional[float]]
    hot_realloc: Dict[int, Optional[float]]
    seq: "fig5.Fig5Result"

    def render(self) -> str:
        """ASCII version of Figure 6."""
        chart = render_chart(
            [
                ("Realloc (Sequential)", self.seq.sizes,
                 [self.seq.realloc[s] for s in self.seq.sizes]),
                ("Realloc (Hot Files)", self.bins,
                 [self.hot_realloc[b] for b in self.bins]),
                ("FFS (Sequential)", self.seq.sizes,
                 [self.seq.ffs[s] for s in self.seq.sizes]),
                ("FFS (Hot Files)", self.bins,
                 [self.hot_ffs[b] for b in self.bins]),
            ],
            title="Figure 6: Layout Score of Hot Files",
            xlabel="File size (bytes, log scale)",
            ylabel="Layout score",
            log_x=True,
            y_range=(0.0, 1.0),
        )
        return chart


def run(preset: str = "small") -> Fig6Result:
    """Score the hot sets by size and attach the Figure 5 curves."""
    p = get_preset(preset)
    hot_sets = {}
    largest = 16 * KB
    window = 0.1 * p.days  # the paper's "last month of ten"
    for policy in ("ffs", "realloc"):
        bench = HotFileBenchmark(aged(preset, policy).fs, window_days=window)
        hot = bench.hot_files()
        hot_sets[policy] = hot
        largest = max([largest] + [inode.size for inode in hot])
    bins = default_size_bins(largest=largest)
    return Fig6Result(
        bins=bins,
        hot_ffs=layout_by_size_bins(hot_sets["ffs"], bins),
        hot_realloc=layout_by_size_bins(hot_sets["realloc"], bins),
        seq=fig5.run(preset),
    )

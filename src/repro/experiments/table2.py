"""Table 2: performance of recently modified ("hot") files.

The benchmark of Section 5.2 on both aged file systems: all files
modified during the last month of the aging workload are read (sorted by
directory) and then overwritten in place.  The paper's numbers:

==================  =======  =============
                    FFS      FFS + Realloc
==================  =======  =============
Layout score        0.80     0.96
Read throughput     1.65     2.18 MB/sec   (+32%)
Write throughput    1.04     1.25 MB/sec   (+20%)
==================  =======  =============

The hot set was 10.5% of the files (929 of 8774) and 19% of the
allocated space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import render_table
from repro.bench.hotfiles import HotFileBenchmark, HotFileResult
from repro.bench.timing import BenchmarkRunner
from repro.experiments.config import aged_fs_copy, get_preset
from repro.units import MB


@dataclass(frozen=True)
class Table2Result:
    """Hot-file results per policy."""

    results: Dict[str, HotFileResult]

    @property
    def read_improvement(self) -> float:
        """Relative read-throughput gain of realloc (paper: 32%)."""
        ffs = self.results["ffs"].read_throughput.mean
        re = self.results["realloc"].read_throughput.mean
        return (re - ffs) / ffs if ffs else 0.0

    @property
    def write_improvement(self) -> float:
        """Relative write-throughput gain of realloc (paper: 20%)."""
        ffs = self.results["ffs"].write_throughput.mean
        re = self.results["realloc"].write_throughput.mean
        return (re - ffs) / ffs if ffs else 0.0

    def render(self) -> str:
        """Text rendering of Table 2."""
        ffs, re = self.results["ffs"], self.results["realloc"]
        rows = [
            ("Layout Score", f"{ffs.layout_score:.2f}", f"{re.layout_score:.2f}"),
            (
                "Read Throughput",
                f"{ffs.read_throughput.mean / MB:.2f} MB/sec",
                f"{re.read_throughput.mean / MB:.2f} MB/sec",
            ),
            (
                "Write Throughput",
                f"{ffs.write_throughput.mean / MB:.2f} MB/sec",
                f"{re.write_throughput.mean / MB:.2f} MB/sec",
            ),
        ]
        table = render_table(
            ["", "FFS", "FFS + Realloc"], rows,
            title="Table 2: Performance of Recently Modified Files",
        )
        summary = (
            f"\n  hot set: {ffs.n_hot_files} of {ffs.n_total_files} files "
            f"({ffs.fraction_of_files:.1%}, paper 10.5%), "
            f"{ffs.fraction_of_space:.0%} of space (paper 19%)"
            f"\n  improvements: read {self.read_improvement:+.0%} "
            f"(paper +32%), write {self.write_improvement:+.0%} (paper +20%)"
        )
        return table + summary


def run(preset: str = "small") -> Table2Result:
    """Run the hot-file benchmark on both aged file systems."""
    p = get_preset(preset)
    runner = BenchmarkRunner(p.bench_repetitions)
    # The paper's hot window is the last month of ten — 10% of the
    # simulated duration — so scaled presets scale the window with it.
    window = 0.1 * p.days
    results = {
        policy: HotFileBenchmark(
            aged_fs_copy(preset, policy), window_days=window, runner=runner
        ).run()
        for policy in ("ffs", "realloc")
    }
    return Table2Result(results=results)

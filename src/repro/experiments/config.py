"""Scale presets and cached experiment artifacts.

Replaying ten months of activity twice per experiment is the expensive
part of the reproduction, so experiments share artifacts through the
cached accessors here:

* :func:`artifacts` — the aging workloads (ground truth, snapshots,
  reconstruction) for a preset;
* :func:`aged` — the reconstructed workload replayed under a policy;
* :func:`aged_real` — the ground truth replayed (the "Real" curve);
* :func:`aged_fs_copy` — a deep copy of an aged file system for
  benchmarks that mutate it.

Three presets trade fidelity for runtime.  All keep the paper's block
and fragment sizes, ``maxcontig``, and utilization trajectory; only the
partition size and simulated duration shrink.  EXPERIMENTS.md records
which preset produced every reported number.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

from repro import cache, storage
from repro.aging.generator import AgingConfig, AgingArtifacts, build_workloads
from repro.aging.replay import ReplayResult, age_file_system
from repro.ffs.filesystem import FileSystem
from repro.ffs.params import FSParams, scaled_params
from repro.units import KB, MB


@dataclass(frozen=True)
class Preset:
    """One scale point for the whole experiment suite."""

    name: str
    params: FSParams
    days: int
    seed: int
    #: Total data volume of the sequential I/O benchmark (paper: 32 MB).
    bench_total_bytes: int
    #: Repetitions per throughput measurement (paper: 10).
    bench_repetitions: int
    #: File sizes swept by the sequential benchmark (Figures 4 and 5).
    bench_file_sizes: Tuple[int, ...]


def _paper_sizes(max_size: int) -> Tuple[int, ...]:
    """The paper's size sweep: powers of two 16 KB..32 MB plus the
    structurally interesting points 56 KB (cluster size), 96 KB (last
    direct-block size), and 104 KB (first indirect size)."""
    sizes = [16 * KB, 32 * KB, 56 * KB, 64 * KB, 96 * KB, 104 * KB, 128 * KB]
    size = 256 * KB
    while size <= max_size:
        sizes.append(size)
        size *= 2
    return tuple(s for s in sizes if s <= max_size)


PRESETS: Dict[str, Preset] = {
    "tiny": Preset(
        name="tiny",
        params=scaled_params(24 * MB),
        days=20,
        seed=1996,
        bench_total_bytes=1 * MB,
        bench_repetitions=3,
        bench_file_sizes=_paper_sizes(512 * KB),
    ),
    "small": Preset(
        name="small",
        params=scaled_params(96 * MB),
        days=100,
        seed=1996,
        bench_total_bytes=6 * MB,
        bench_repetitions=5,
        bench_file_sizes=_paper_sizes(2 * MB),
    ),
    "paper": Preset(
        name="paper",
        params=FSParams(),  # 502 MB, 27 groups — Table 1 exactly
        days=300,
        seed=1996,
        bench_total_bytes=32 * MB,
        bench_repetitions=10,
        bench_file_sizes=_paper_sizes(32 * MB),
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


def aging_config(preset_name: str) -> AgingConfig:
    """The aging-pipeline configuration for a preset.

    Also the cache-key material for that preset's aged artifacts: two
    runs with equal configs are interchangeable, so the persistent
    cache hashes exactly this.
    """
    preset = get_preset(preset_name)
    return AgingConfig(params=preset.params, days=preset.days, seed=preset.seed)


@lru_cache(maxsize=None)
def artifacts(preset_name: str) -> AgingArtifacts:
    """The aging workloads for a preset (built once per process)."""
    return build_workloads(aging_config(preset_name))


def _replayed(
    preset_name: str, workload: str, policy: str, label: str
) -> ReplayResult:
    """One aged file system, through the persistent cache when enabled.

    Misses replay the workload and (best-effort) persist the result;
    hits skip both the workload construction and the replay, which is
    what makes a warm ``experiment all`` fast and what lets parallel
    workers share agings instead of each redoing them.
    """
    store = cache.store()
    key = None
    if store is not None:
        key = cache.replay_key(
            preset_name,
            aging_config(preset_name),
            workload,
            policy,
            label,
            backend=storage.current_backend(),
        )
        cached = store.load_replay(key)
        if cached is not None:
            return cached
    art = artifacts(preset_name)
    source = art.reconstructed if workload == "reconstructed" else art.ground_truth
    result = age_file_system(
        source,
        params=get_preset(preset_name).params,
        policy=policy,
        label=label,
    )
    if store is not None and key is not None:
        store.save_replay(key, result)
    return result


@lru_cache(maxsize=None)
def aged(preset_name: str, policy: str) -> ReplayResult:
    """The reconstructed workload replayed under ``policy``."""
    label = "FFS + Realloc" if policy == "realloc" else "FFS"
    return _replayed(preset_name, "reconstructed", policy, label)


@lru_cache(maxsize=None)
def aged_real(preset_name: str) -> ReplayResult:
    """The ground-truth workload replayed under the original policy.

    This is the stand-in for "the original file system" in the Figure 1
    validation: the activity the snapshots could not capture is present
    here and absent from the reconstruction.
    """
    return _replayed(preset_name, "ground-truth", "ffs", "Real")


def aged_fs_copy(preset_name: str, policy: str) -> FileSystem:
    """A private deep copy of an aged file system, safe to mutate."""
    return copy.deepcopy(aged(preset_name, policy).fs)


def clear_caches() -> None:
    """Drop every in-process experiment memo.

    Covers the accessors here *and* the per-experiment ``lru_cache``
    memos in the experiment modules (found by scanning loaded modules,
    so nothing gets imported as a side effect).  Tests use this to
    control memory; parallel workers use it so that work re-done under
    a fresh telemetry session is not short-circuited by results
    memoized under an earlier (already snapshotted) one.
    """
    import sys

    for name, module in list(sys.modules.items()):
        if module is None or not name.startswith("repro.experiments"):
            continue
        for attr in vars(module).values():
            if callable(attr) and hasattr(attr, "cache_clear"):
                attr.cache_clear()

"""Scale presets and cached experiment artifacts.

Replaying ten months of activity twice per experiment is the expensive
part of the reproduction, so experiments share artifacts through the
cached accessors here:

* :func:`artifacts` — the aging workloads (ground truth, snapshots,
  reconstruction) for a preset;
* :func:`aged` — the reconstructed workload replayed under a policy;
* :func:`aged_real` — the ground truth replayed (the "Real" curve);
* :func:`aged_fs_copy` — a deep copy of an aged file system for
  benchmarks that mutate it.

Three presets trade fidelity for runtime.  All keep the paper's block
and fragment sizes, ``maxcontig``, and utilization trajectory; only the
partition size and simulated duration shrink.  EXPERIMENTS.md records
which preset produced every reported number.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.aging.generator import AgingConfig, AgingArtifacts, build_workloads
from repro.aging.replay import ReplayResult, age_file_system
from repro.ffs.filesystem import FileSystem
from repro.ffs.params import FSParams, scaled_params
from repro.units import KB, MB


@dataclass(frozen=True)
class Preset:
    """One scale point for the whole experiment suite."""

    name: str
    params: FSParams
    days: int
    seed: int
    #: Total data volume of the sequential I/O benchmark (paper: 32 MB).
    bench_total_bytes: int
    #: Repetitions per throughput measurement (paper: 10).
    bench_repetitions: int
    #: File sizes swept by the sequential benchmark (Figures 4 and 5).
    bench_file_sizes: Tuple[int, ...]


def _paper_sizes(max_size: int) -> Tuple[int, ...]:
    """The paper's size sweep: powers of two 16 KB..32 MB plus the
    structurally interesting points 56 KB (cluster size), 96 KB (last
    direct-block size), and 104 KB (first indirect size)."""
    sizes = [16 * KB, 32 * KB, 56 * KB, 64 * KB, 96 * KB, 104 * KB, 128 * KB]
    size = 256 * KB
    while size <= max_size:
        sizes.append(size)
        size *= 2
    return tuple(s for s in sizes if s <= max_size)


PRESETS: Dict[str, Preset] = {
    "tiny": Preset(
        name="tiny",
        params=scaled_params(24 * MB),
        days=20,
        seed=1996,
        bench_total_bytes=1 * MB,
        bench_repetitions=3,
        bench_file_sizes=_paper_sizes(512 * KB),
    ),
    "small": Preset(
        name="small",
        params=scaled_params(96 * MB),
        days=100,
        seed=1996,
        bench_total_bytes=6 * MB,
        bench_repetitions=5,
        bench_file_sizes=_paper_sizes(2 * MB),
    ),
    "paper": Preset(
        name="paper",
        params=FSParams(),  # 502 MB, 27 groups — Table 1 exactly
        days=300,
        seed=1996,
        bench_total_bytes=32 * MB,
        bench_repetitions=10,
        bench_file_sizes=_paper_sizes(32 * MB),
    ),
}


def get_preset(name: str) -> Preset:
    """Look up a preset by name with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


@lru_cache(maxsize=None)
def artifacts(preset_name: str) -> AgingArtifacts:
    """The aging workloads for a preset (built once per process)."""
    preset = get_preset(preset_name)
    config = AgingConfig(params=preset.params, days=preset.days, seed=preset.seed)
    return build_workloads(config)


@lru_cache(maxsize=None)
def aged(preset_name: str, policy: str) -> ReplayResult:
    """The reconstructed workload replayed under ``policy``."""
    preset = get_preset(preset_name)
    return age_file_system(
        artifacts(preset_name).reconstructed,
        params=preset.params,
        policy=policy,
        label=f"FFS + Realloc" if policy == "realloc" else "FFS",
    )


@lru_cache(maxsize=None)
def aged_real(preset_name: str) -> ReplayResult:
    """The ground-truth workload replayed under the original policy.

    This is the stand-in for "the original file system" in the Figure 1
    validation: the activity the snapshots could not capture is present
    here and absent from the reconstruction.
    """
    preset = get_preset(preset_name)
    return age_file_system(
        artifacts(preset_name).ground_truth,
        params=preset.params,
        policy="ffs",
        label="Real",
    )


def aged_fs_copy(preset_name: str, policy: str) -> FileSystem:
    """A private deep copy of an aged file system, safe to mutate."""
    return copy.deepcopy(aged(preset_name, policy).fs)


def clear_caches() -> None:
    """Drop all cached artifacts (tests use this to control memory)."""
    artifacts.cache_clear()
    aged.cache_clear()
    aged_real.cache_clear()

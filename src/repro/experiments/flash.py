"""Policy x backend: does rotational placement still matter on flash?

The paper's whole evaluation prices layouts on a rotating disk, where an
aged, fragmented layout costs seeks and lost rotations.  A flash device
with a page-mapped FTL (:mod:`repro.ssd`) has no moving parts: logical
adjacency buys only shorter per-request overheads, and the device adds a
cost dimension the disk never had — garbage collection, visible as
write amplification and erase wear.  This experiment reruns the
empty-vs-aged question on both backends and then churns the aged
layouts on flash:

* **aging penalty, per backend** — the sequential-read benchmark on an
  empty and an aged file system, for both policies, on ``disk`` and on
  ``ssd``.  Expected shape: the double-digit aging penalty that
  motivates the paper collapses to near zero on flash, because the FTL
  decouples logical placement from physical placement.
* **rewrite churn on flash** — the aged layouts' live files are flushed
  to a right-sized SSD in elevator (disk-address) order, then rewritten
  in rotating cohorts until garbage collection reaches steady state.
  Flash co-location mirrors disk adjacency under elevator-ordered
  writeback, so FFS's fragmented layout spreads each file's
  invalidations thinly across many erase blocks (forcing cold-page
  migration) while realloc's clustered layout concentrates them —
  rotational placement stops paying for reads exactly where clustered
  placement starts paying for erases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.analysis.report import render_table
from repro.bench.iomodel import FileIOPricer
from repro.bench.sequential import SequentialIOBenchmark
from repro.bench.timing import BenchmarkRunner
from repro.disk.model import IOKind
from repro.experiments.config import aged_fs_copy, get_preset
from repro.ffs.filesystem import FileSystem
from repro.ssd import SSDGeometry, SSDModel
from repro.storage import BACKENDS, using_backend
from repro.units import KB, MB

#: The file population is dealt into this many cohorts; each churn
#: round rewrites two *adjacent* cohorts, so every flush batch mixes
#: pages that die one round later with pages that die three rounds
#: later.  Whether those lifetimes end up sharing erase blocks is
#: exactly what the disk layout decides under elevator-order writeback.
CHURN_COHORTS = 4

#: Hard ceiling on churn rounds (the round count is derived from device
#: occupancy; the cap only guards against a pathological preset).
MAX_CHURN_ROUNDS = 64


@dataclass(frozen=True)
class ChurnOutcome:
    """Flash-level cost of rewriting one policy's aged layout."""

    host_bytes: int
    write_amplification: float
    flash_erases: int
    gc_moved_pages: int
    max_erase_count: int
    rounds: int


@dataclass(frozen=True)
class FlashResult:
    """Aging penalties per backend plus flash churn costs per policy."""

    sizes: List[int]
    #: (policy, backend) -> size -> (empty bytes/s, aged bytes/s)
    throughput: Dict[Tuple[str, str], Dict[int, Tuple[float, float]]]
    #: policy -> churn outcome on the right-sized SSD
    churn: Dict[str, ChurnOutcome]

    def degradation(self, policy: str, backend: str, size: int) -> float:
        """Fractional sequential-read loss from aging."""
        empty, aged = self.throughput[(policy, backend)][size]
        return (empty - aged) / empty if empty else 0.0

    def mean_degradation(self, policy: str, backend: str) -> float:
        """Average degradation across the size sweep."""
        values = [self.degradation(policy, backend, s) for s in self.sizes]
        return sum(values) / len(values) if values else 0.0

    def render(self) -> str:
        """Text tables of both studies."""
        rows = []
        for size in self.sizes:
            row = [f"{size // KB} KB"]
            for policy in ("ffs", "realloc"):
                for backend in BACKENDS:
                    row.append(
                        f"{self.degradation(policy, backend, size):+.0%}"
                    )
            rows.append(tuple(row))
        penalty = render_table(
            [
                "size",
                "FFS disk", "FFS ssd",
                "realloc disk", "realloc ssd",
            ],
            rows,
            title="Aging penalty by backend (sequential-read loss)",
        )
        summary = (
            "\n  mean aging penalty: "
            + ", ".join(
                f"{policy}/{backend} "
                f"{self.mean_degradation(policy, backend):.0%}"
                for policy in ("ffs", "realloc")
                for backend in BACKENDS
            )
        )
        churn_rows = []
        for policy in ("ffs", "realloc"):
            o = self.churn[policy]
            churn_rows.append(
                (
                    policy,
                    f"{o.host_bytes / MB:.1f} MB",
                    f"{o.write_amplification:.3f}x",
                    str(o.flash_erases),
                    str(o.gc_moved_pages),
                    str(o.max_erase_count),
                )
            )
        churn = render_table(
            [
                "policy", "host writes", "write amp",
                "erases", "pages migrated", "max erase count",
            ],
            churn_rows,
            title="\nRewrite churn on flash (aged layouts, elevator-order writeback)",
        )
        note = (
            "\n  the FTL hides placement from reads; what the layout still"
            "\n  decides is how invalidations land on erase blocks."
        )
        return penalty + summary + "\n" + churn + note


def _churn(preset: str, policy: str) -> ChurnOutcome:
    """Flush an aged layout to a right-sized SSD, then rewrite cohorts.

    Writes reach the device in disk-address order — elevator-scheduled
    writeback — so pages co-located on flash are pages adjacent on the
    disk layout.  Rounds continue until cumulative churn is twice the
    device's physical capacity, deep into garbage-collection steady
    state, with every file rewritten at least once.
    """
    p = get_preset(preset)
    fs = aged_fs_copy(preset, policy)
    block_size = p.params.block_size
    ssd = SSDModel(SSDGeometry.for_bytes(p.params.actual_size_bytes))
    pricer = FileIOPricer(fs, ssd)
    files = sorted(fs.files(), key=lambda inode: inode.ino)
    extents = {inode.ino: pricer.file_extents(inode) for inode in files}

    fill = sorted(
        (e for inode in files for e in extents[inode.ino]),
        key=lambda e: e.start,
    )
    ssd.transfer_extents(IOKind.WRITE, fill, block_size)

    fill_pages = ssd.stats.host_pages_written
    per_round = max(1, 2 * fill_pages // CHURN_COHORTS)
    physical = ssd.geometry.physical_pages
    rounds = min(
        MAX_CHURN_ROUNDS,
        max(2 * CHURN_COHORTS, math.ceil(2 * physical / per_round)),
    )
    for rnd in range(rounds):
        live = {rnd % CHURN_COHORTS, (rnd + 1) % CHURN_COHORTS}
        cohort = [
            inode for index, inode in enumerate(files)
            if index % CHURN_COHORTS in live
        ]
        batch = sorted(
            (e for inode in cohort for e in extents[inode.ino]),
            key=lambda e: e.start,
        )
        ssd.transfer_extents(IOKind.WRITE, batch, block_size)

    stats = ssd.stats
    return ChurnOutcome(
        host_bytes=stats.bytes_written,
        write_amplification=stats.write_amplification(),
        flash_erases=stats.flash_erases,
        gc_moved_pages=stats.gc_moved_pages,
        max_erase_count=max(ssd.ftl.erase_counts),
        rounds=rounds,
    )


@lru_cache(maxsize=None)
def run(preset: str = "small") -> FlashResult:
    """Benchmark both policies on both backends, then churn on flash."""
    p = get_preset(preset)
    sizes = [
        s for s in (16 * KB, 56 * KB, 96 * KB, 256 * KB, 1024 * KB)
        if s <= p.bench_total_bytes
    ]
    runner = BenchmarkRunner(p.bench_repetitions)
    throughput: Dict[Tuple[str, str], Dict[int, Tuple[float, float]]] = {}
    for policy in ("ffs", "realloc"):
        for backend in BACKENDS:
            cell: Dict[int, Tuple[float, float]] = {}
            with using_backend(backend):
                for size in sizes:
                    empty_fs = FileSystem(p.params, policy=policy)
                    empty = SequentialIOBenchmark(
                        empty_fs, total_bytes=p.bench_total_bytes,
                        runner=runner,
                    ).run(size)
                    aged_fs = aged_fs_copy(preset, policy)
                    aged = SequentialIOBenchmark(
                        aged_fs, total_bytes=p.bench_total_bytes,
                        runner=runner,
                    ).run(size)
                    cell[size] = (
                        empty.read_throughput.mean,
                        aged.read_throughput.mean,
                    )
            throughput[(policy, backend)] = cell
    churn = {policy: _churn(preset, policy) for policy in ("ffs", "realloc")}
    return FlashResult(sizes=sizes, throughput=throughput, churn=churn)

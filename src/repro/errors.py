"""Exception hierarchy for the FFS allocation-policy reproduction.

Errors are split into four families:

* :class:`SimulationError` — anything raised by the simulator proper,
* :class:`ConsistencyError` — an internal invariant was violated (these are
  bugs, and the fsck-lite checker raises them),
* :class:`WorkloadError` — malformed aging-workload input,
* :class:`FaultInjectionError` — an *injected* failure from
  :mod:`repro.faults` (crash points, latent sector errors); these model
  hardware misbehaviour, not simulator bugs.

The CLI maps every family onto a stable exit code via
:func:`exit_code_for`, so scripts and CI can distinguish "the input was
bad" from "the simulation failed" without parsing stderr.
"""

from __future__ import annotations

#: CLI exit codes, shared by every ``repro-ffs`` subcommand:
#: 0 — success; 1 — the operation ran and failed (corruption found, a
#: simulation error, a regression); 2 — the request itself was unusable
#: (missing file, malformed input, bad flag value).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


class SimulationError(Exception):
    """Base class for all errors raised by the simulator."""


class OutOfSpaceError(SimulationError):
    """The file system has no free block/fragment satisfying a request.

    Mirrors the kernel's ``ENOSPC``.  Carries the cylinder group that was
    being searched when space ran out (or ``None`` for a global failure).
    """

    def __init__(self, message: str, cg: "int | None" = None) -> None:
        super().__init__(message)
        self.cg = cg


class FileNotFoundSimError(SimulationError):
    """An operation referenced an inode that does not exist."""


class FileExistsSimError(SimulationError):
    """A create referenced an inode number that is already live."""


class InvalidRequestError(SimulationError):
    """Caller asked for something nonsensical (negative size, bad offset)."""


class ConsistencyError(SimulationError):
    """An internal invariant of the file system state was violated.

    Raised by :mod:`repro.ffs.check`; seeing one of these means the
    simulator itself has a bug, not the caller.
    """


class WorkloadError(SimulationError):
    """An aging-workload record was malformed or out of order."""


class RunStoreError(SimulationError):
    """A run-registry document under ``.repro/runs/`` was unusable.

    Raised by :mod:`repro.obs.store` when an entry is unreadable,
    truncated, or carries a foreign schema.  Bulk listings
    (``repro-ffs history``, drift trends) catch it per entry and
    degrade to a one-line stderr warning; addressing one run directly
    (``repro-ffs diff <run-id>``) lets it surface.  Carries the path
    of the offending document.
    """

    def __init__(self, message: str, path: "str | None" = None) -> None:
        super().__init__(message)
        self.path = path


class FaultInjectionError(SimulationError):
    """Base class for failures *injected* by :mod:`repro.faults`.

    These are deliberate, plan-driven misbehaviours of the simulated
    hardware — not bugs in the simulator.  Code that opts into fault
    injection catches these; code that never enables a fault plan never
    sees one.
    """


class LatentSectorReadError(FaultInjectionError):
    """A read touched a sector marked bad by the active fault plan.

    Models a latent sector error: the medium degraded silently and the
    failure only surfaces when the sector is next read.  Carries the
    linear byte address of the failed read and the file-system block it
    maps to (or ``None`` when the read was not block-aligned).
    """

    def __init__(
        self, message: str, byte: int, fs_block: "int | None" = None
    ) -> None:
        super().__init__(message)
        self.byte = byte
        self.fs_block = fs_block


def exit_code_for(exc: BaseException) -> int:
    """The CLI exit code for an exception that escaped a subcommand.

    Malformed *input* (a bad workload file, a nonsensical request, an
    unreadable path) is a usage error (2); everything else the simulator
    raises — including corruption found by the checker and injected
    faults — is an operational failure (1).
    """
    if isinstance(exc, (WorkloadError, InvalidRequestError, OSError)):
        return EXIT_USAGE
    if isinstance(exc, SimulationError):
        return EXIT_FAILURE
    return EXIT_FAILURE

"""Exception hierarchy for the FFS allocation-policy reproduction.

Errors are split into three families:

* :class:`SimulationError` — anything raised by the simulator proper,
* :class:`ConsistencyError` — an internal invariant was violated (these are
  bugs, and the fsck-lite checker raises them),
* :class:`WorkloadError` — malformed aging-workload input.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulator."""


class OutOfSpaceError(SimulationError):
    """The file system has no free block/fragment satisfying a request.

    Mirrors the kernel's ``ENOSPC``.  Carries the cylinder group that was
    being searched when space ran out (or ``None`` for a global failure).
    """

    def __init__(self, message: str, cg: "int | None" = None) -> None:
        super().__init__(message)
        self.cg = cg


class FileNotFoundSimError(SimulationError):
    """An operation referenced an inode that does not exist."""


class FileExistsSimError(SimulationError):
    """A create referenced an inode number that is already live."""


class InvalidRequestError(SimulationError):
    """Caller asked for something nonsensical (negative size, bad offset)."""


class ConsistencyError(SimulationError):
    """An internal invariant of the file system state was violated.

    Raised by :mod:`repro.ffs.check`; seeing one of these means the
    simulator itself has a bug, not the caller.
    """


class WorkloadError(SimulationError):
    """An aging-workload record was malformed or out of order."""

"""Reproduction of Smith & Seltzer, *A Comparison of FFS Disk Allocation
Policies* (USENIX 1996).

The package rebuilds, in pure Python, everything the paper's evaluation
needs: a block/fragment-level FFS simulator with both allocation policies
under study, a file-system aging pipeline (synthetic source activity,
nightly snapshots, workload reconstruction, short-lived NFS churn,
replay), an analytical disk timing model, and the benchmark/experiment
harness that regenerates every table and figure.

Quick start::

    from repro import FileSystem, FSParams
    from repro.aging import AgingConfig, build_workloads
    from repro.aging.replay import age_file_system

    config = AgingConfig(days=60)
    workloads = build_workloads(config)
    result = age_file_system(workloads.reconstructed, policy="realloc")
    print(result.timeline.final_score())

See README.md for the architecture overview and DESIGN.md for the
per-experiment index.
"""

from repro.ffs import FileSystem, FSParams
from repro.disk import DiskGeometry, DiskModel

__version__ = "1.0.0"

__all__ = ["FileSystem", "FSParams", "DiskGeometry", "DiskModel", "__version__"]

"""Flash storage substrate: page-mapped FTL behind the disk interface.

The package provides :class:`~repro.ssd.model.SSDModel`, a flash twin
of :class:`~repro.disk.model.DiskModel` satisfying the same
``StorageModel`` protocol (see :mod:`repro.storage`), built on a
page-mapped FTL with a bounded DFTL-style mapping cache and
threshold-triggered greedy garbage collection.  Select it anywhere
with ``--backend ssd``.
"""

from repro.ssd.config import DEFAULT_LOGICAL_BYTES, SSDGeometry
from repro.ssd.ftl import MappingCache, PageMappedFTL
from repro.ssd.model import SSDModel, SSDStats

__all__ = [
    "DEFAULT_LOGICAL_BYTES",
    "SSDGeometry",
    "MappingCache",
    "PageMappedFTL",
    "SSDModel",
    "SSDStats",
]

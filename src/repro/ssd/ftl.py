"""Page-mapped flash translation layer with greedy garbage collection.

The FTL is where flash behaviour diverges structurally from the disk
model: there is no head and no platter, but a page can only be written
once per erase cycle, so every logical overwrite allocates a *new*
physical page and invalidates the old one.  When the free-block pool
runs low, garbage collection picks the sealed block with the fewest
valid pages (greedy policy), migrates its survivors, and erases it —
the migrated pages are the write amplification the experiments measure.

The logical→physical map itself lives "on flash" behind a bounded
DFTL-style cache ([Gupta09]'s demand-paging idea): translation pages
are faulted in on miss (one page read) and written back when a dirty
one is evicted (one page program).  A workload with mapping locality
pays nothing; a scattered one pays a measurable translation tax.

Everything here is deterministic by construction — free blocks are
consumed FIFO, GC victims tie-break on block id, and no wall clock or
RNG is consulted — so a same-seed run is byte-identical across
serial and ``--jobs N`` executions (replint R001 discipline).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import OutOfSpaceError
from repro.ssd.config import SSDGeometry


class MappingCache:
    """Bounded LRU cache of translation pages (the DFTL "CMT").

    Tracks which translation pages are resident and which are dirty;
    reports the flash cost (translation reads + writebacks) of each
    lookup so the model can charge it to the request that caused it.
    """

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        #: tpage id -> dirty flag, in LRU order (oldest first).
        self._resident: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def touch(self, lpn: int, dirty: bool) -> float:
        """Make ``lpn``'s translation page resident; returns flash ms.

        A hit costs nothing (the entry is in device RAM).  A miss
        faults the translation page in (one page read) and, when the
        cache is full and the evicted page is dirty, writes the victim
        back (one page program).
        """
        geo = self.geometry
        tpage = lpn // geo.map_entries_per_tpage
        if tpage in self._resident:
            self.hits += 1
            self._resident[tpage] = self._resident[tpage] or dirty
            self._resident.move_to_end(tpage)
            return 0.0
        self.misses += 1
        elapsed = geo.read_page_ms
        if len(self._resident) >= geo.map_cache_tpages:
            _evicted, was_dirty = self._resident.popitem(last=False)
            if was_dirty:
                self.writebacks += 1
                elapsed += geo.program_page_ms
        self._resident[tpage] = dirty
        return elapsed


class PageMappedFTL:
    """Logical→physical page map, free/used block pools, greedy GC."""

    def __init__(self, geometry: SSDGeometry) -> None:
        self.geometry = geometry
        #: Live logical pages: lpn -> ppn.
        self.page_map: Dict[int, int] = {}
        #: Inverse of :attr:`page_map` for GC migration: ppn -> lpn.
        self.reverse_map: Dict[int, int] = {}
        #: Valid (live) pages per erase block.
        self.valid_count: List[int] = [0] * geometry.nblocks
        #: Erase cycles per block — monotonically non-decreasing.
        self.erase_counts: List[int] = [0] * geometry.nblocks
        #: Never-written or erased blocks, consumed FIFO for determinism.
        self.free_blocks: Deque[int] = deque(range(geometry.nblocks))
        #: Fully-programmed blocks, in seal order (GC victim pool).
        self.sealed_blocks: List[int] = []
        self.map_cache = MappingCache(geometry)
        self._open_block = self.free_blocks.popleft()
        self._write_ptr = 0
        # Flash-operation counters (data path; translation traffic is
        # counted by the mapping cache).
        self.flash_reads = 0
        self.flash_programs = 0
        self.flash_erases = 0
        self.gc_runs = 0
        self.gc_moved_pages = 0
        self.host_pages_written = 0

    # ------------------------------------------------------------------
    # Host operations
    # ------------------------------------------------------------------

    def read(self, lpn: int) -> float:
        """Read one logical page; returns flash time in ms.

        Every read is priced as a data-page read, mapped or not.  The
        simulation's data plane is virtual — the file system above
        believes data exists everywhere it reads — so an
        unmapped-address fast path (which real FTLs do have) would
        misprice every benchmark read of a logically-existing file
        whose bytes were never replayed through this device.
        """
        elapsed = self.map_cache.touch(lpn, dirty=False)
        self.flash_reads += 1
        return elapsed + self.geometry.read_page_ms

    def write(self, lpn: int) -> Tuple[float, float]:
        """Write one logical page; returns ``(total_ms, gc_ms)``.

        Allocates a fresh physical page (running GC first if the free
        pool is exhausted), programs it, and invalidates the previous
        mapping.  ``gc_ms`` is the garbage-collection pause embedded in
        ``total_ms`` — zero on the no-GC fast path.
        """
        elapsed = self.map_cache.touch(lpn, dirty=True)
        gc_ms = self._maybe_collect()
        elapsed += gc_ms
        ppn = self._program_next_page(lpn)
        old = self.page_map.get(lpn)
        if old is not None:
            self._invalidate(old)
        self.page_map[lpn] = ppn
        self.reverse_map[ppn] = lpn
        self.host_pages_written += 1
        elapsed += self.geometry.program_page_ms
        return elapsed, gc_ms

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def write_amplification(self) -> float:
        """Data pages programmed per host page written (1.0 = none)."""
        if self.host_pages_written == 0:
            return 1.0
        return self.flash_programs / self.host_pages_written

    def live_pages(self) -> int:
        """Logical pages currently mapped."""
        return len(self.page_map)

    # ------------------------------------------------------------------
    # Allocation and garbage collection
    # ------------------------------------------------------------------

    def _program_next_page(self, lpn: int) -> int:
        """Program the next page of the open block; returns its ppn."""
        geo = self.geometry
        ppn = self._open_block * geo.pages_per_block + self._write_ptr
        self._write_ptr += 1
        self.valid_count[self._open_block] += 1
        self.flash_programs += 1
        if self._write_ptr == geo.pages_per_block:
            self.sealed_blocks.append(self._open_block)
            self._open_block = self.free_blocks.popleft()
            self._write_ptr = 0
        return ppn

    def _invalidate(self, ppn: int) -> None:
        block = ppn // self.geometry.pages_per_block
        self.valid_count[block] -= 1
        del self.reverse_map[ppn]

    def _maybe_collect(self) -> float:
        """Run greedy GC until the free pool clears the threshold.

        Returns the total pause in ms (erases + migrations).  Raises
        :class:`~repro.errors.OutOfSpaceError` when every sealed block
        is fully valid — the device genuinely has nowhere to put the
        write.
        """
        geo = self.geometry
        if len(self.free_blocks) > geo.gc_free_block_threshold:
            return 0.0
        pause = 0.0
        while len(self.free_blocks) <= geo.gc_free_block_threshold:
            victim = self._pick_victim()
            if victim is None:
                raise OutOfSpaceError(
                    f"ssd full: {len(self.free_blocks)} free blocks and "
                    f"no reclaimable sealed block "
                    f"({self.live_pages()} live pages of "
                    f"{geo.logical_pages} logical)"
                )
            pause += self._collect_block(victim)
        self.gc_runs += 1
        return pause

    def _pick_victim(self) -> Optional[int]:
        """Sealed block with the fewest valid pages; ties by block id.

        A fully-valid block is never a victim (migrating it reclaims
        nothing); ``None`` means no sealed block can be reclaimed.
        """
        best: Optional[int] = None
        best_valid = self.geometry.pages_per_block
        for block in self.sealed_blocks:
            valid = self.valid_count[block]
            if valid < best_valid or (
                valid == best_valid and best is not None and block < best
            ):
                best = block
                best_valid = valid
        return best

    def _collect_block(self, victim: int) -> float:
        """Migrate the victim's valid pages, erase it, free it."""
        geo = self.geometry
        self.sealed_blocks.remove(victim)
        elapsed = 0.0
        base = victim * geo.pages_per_block
        for offset in range(geo.pages_per_block):
            ppn = base + offset
            lpn = self.reverse_map.get(ppn)
            if lpn is None:
                continue
            # Read the survivor and program it into the open block.
            self.flash_reads += 1
            elapsed += geo.read_page_ms
            new_ppn = self._program_next_page(lpn)
            elapsed += geo.program_page_ms
            del self.reverse_map[ppn]
            self.valid_count[victim] -= 1
            self.page_map[lpn] = new_ppn
            self.reverse_map[new_ppn] = lpn
            self.gc_moved_pages += 1
        self.erase_counts[victim] += 1
        self.flash_erases += 1
        elapsed += geo.erase_block_ms
        self.free_blocks.append(victim)
        return elapsed

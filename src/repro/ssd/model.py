"""SSD timing model: the flash twin of :class:`~repro.disk.model.DiskModel`.

Presents the identical ``access(kind, start_byte, nbytes) -> elapsed_ms``
contract (plus the extent-level helpers and the ``read_fault_hook``
seam), so every benchmark, experiment, and chaos case that drives a
``DiskModel`` can drive this instead via :func:`repro.storage.make_storage`.

The structural differences all fall out of the FTL underneath:

* **No positioning costs** — a request's time is pages x flash latency
  plus bus transfer; where the request *lands* is irrelevant, which is
  exactly why rotational placement's win collapses on this backend.
* **Garbage-collection pauses** — an overwrite-heavy workload
  eventually stalls behind victim migration and erases; the pause is
  charged to the request that triggered it and surfaced per-request in
  the disk trace (``gc_ms``) and in aggregate (``ssd.gc_ms``).
* **Translation faults** — the bounded mapping cache makes scattered
  access pay a measurable translation tax (``map_misses`` per request).

Timing is layout-insensitive but *history-sensitive*: two identical
request sequences always take identical time (determinism), while the
same request can cost more on a device whose free pool is fragmented.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro import obs, schemas
from repro.disk.model import IOKind
from repro.disk.request import Extent, split_for_transfer
from repro.errors import InvalidRequestError
from repro.obs.metrics import MetricsRegistry
from repro.ssd.config import SSDGeometry
from repro.ssd.ftl import PageMappedFTL


class SSDModel:
    """Simulated flash device: extent sequences to elapsed time.

    Parameters
    ----------
    geometry:
        Flash layout/timing parameters (defaults to a device exporting
        the same capacity as Table 1's disk).
    fs_offset_bytes:
        Byte offset of the file-system partition; file-system block
        addresses are linearised relative to this.
    read_fault_hook:
        Optional fault-injection check called with ``(start_byte,
        nbytes)`` before each read is serviced — the same seam
        :class:`~repro.disk.model.DiskModel` exposes, so latent-error
        plans and chaos cases work unchanged on flash.  It runs before
        any clock or FTL mutation.
    """

    def __init__(
        self,
        geometry: "SSDGeometry | None" = None,
        fs_offset_bytes: int = 0,
        read_fault_hook: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.geometry = geometry if geometry is not None else SSDGeometry()
        self.fs_offset = fs_offset_bytes
        self.read_fault_hook = read_fault_hook
        self._trace = obs.disktrace_or_none()
        self.reset()

    # ------------------------------------------------------------------
    # Clock and state
    # ------------------------------------------------------------------

    def reset(self, initial_angle: "float | None" = None) -> None:
        """Rewind the clock and start from a freshly-erased device.

        ``initial_angle`` is accepted for interface compatibility with
        the disk model and ignored: flash has no platter, so repetition
        jitter is structurally zero on this backend.
        """
        del initial_angle
        self.now_ms = 0.0
        self.ftl = PageMappedFTL(self.geometry)
        self.stats = SSDStats()

    def idle(self, ms: float) -> None:
        """Advance the clock for host think time."""
        if ms < 0:
            raise InvalidRequestError("cannot idle for negative time")
        self.now_ms += ms

    def drop_caches(self) -> None:
        """Start-of-phase cache drop: a no-op on flash.

        The disk model invalidates its track buffer here; the SSD's
        only cache is the FTL's *device-internal* mapping cache, which
        a host cache flush does not touch.
        """

    # ------------------------------------------------------------------
    # Low-level single-request timing
    # ------------------------------------------------------------------

    def access(self, kind: IOKind, start_byte: int, nbytes: int) -> float:
        """Service one request of ``nbytes`` at linear ``start_byte``.

        Returns the service time in milliseconds and advances the
        clock.  ``nbytes`` must not exceed the hardware maximum
        transfer size; higher layers split requests first — the same
        contract as the disk model.
        """
        geo = self.geometry
        if nbytes <= 0:
            raise InvalidRequestError("access of zero bytes")
        if nbytes > geo.max_transfer_bytes:
            raise InvalidRequestError(
                f"request of {nbytes} bytes exceeds hardware maximum "
                f"{geo.max_transfer_bytes}"
            )
        if kind is IOKind.READ and self.read_fault_hook is not None:
            # Fault check runs before any clock/FTL mutation so a caught
            # injected error leaves the model consistent.
            self.read_fault_hook(start_byte, nbytes)
        start_time = self.now_ms
        ftl = self.ftl
        cache = ftl.map_cache
        pre_reads = ftl.flash_reads
        pre_programs = ftl.flash_programs
        pre_erases = ftl.flash_erases
        pre_gc_runs = ftl.gc_runs
        pre_moved = ftl.gc_moved_pages
        pre_host = ftl.host_pages_written
        pre_hits = cache.hits
        pre_misses = cache.misses
        pre_writebacks = cache.writebacks
        self.now_ms += geo.request_overhead_ms
        first_lpn = start_byte // geo.page_size
        last_lpn = (start_byte + nbytes - 1) // geo.page_size
        gc_ms = 0.0
        if kind is IOKind.READ:
            for lpn in range(first_lpn, last_lpn + 1):
                self.now_ms += ftl.read(lpn)
        else:
            # Sub-page and unaligned writes program whole pages: the
            # read-modify-write a real FTL performs is folded into the
            # page program, and the amplification it causes is real.
            for lpn in range(first_lpn, last_lpn + 1):
                page_ms, pause_ms = ftl.write(lpn)
                self.now_ms += page_ms
                gc_ms += pause_ms
        self.now_ms += nbytes / geo.bus_rate_bytes_per_ms
        elapsed = self.now_ms - start_time
        self.stats.record(kind, nbytes, elapsed)
        self.stats.record_flash(
            flash_reads=ftl.flash_reads - pre_reads,
            flash_programs=ftl.flash_programs - pre_programs,
            flash_erases=ftl.flash_erases - pre_erases,
            gc_runs=ftl.gc_runs - pre_gc_runs,
            gc_moved_pages=ftl.gc_moved_pages - pre_moved,
            host_pages_written=ftl.host_pages_written - pre_host,
            map_hits=cache.hits - pre_hits,
            map_misses=cache.misses - pre_misses,
            map_writebacks=cache.writebacks - pre_writebacks,
            gc_ms=gc_ms,
        )
        if self._trace is not None:
            # Same fixed row as the disk backend (mechanical fields
            # pinned to zero), plus the SSD-specific extras.
            self._trace.record(
                kind=kind.value,
                byte=start_byte,
                nbytes=nbytes,
                cyl=0,
                seek_cyls=0,
                seek_ms=0.0,
                rot_ms=0.0,
                transfer_ms=elapsed - gc_ms,
                service_ms=elapsed,
                lost_rot=False,
                buf_hit=False,
                gc_ms=gc_ms,
                map_misses=cache.misses - pre_misses,
            )
        return elapsed

    # ------------------------------------------------------------------
    # Extent-level API used by the benchmarks
    # ------------------------------------------------------------------

    def block_to_byte(self, fs_block: int, block_size: int) -> int:
        """Linear device byte address of a file-system block."""
        return self.fs_offset + fs_block * block_size

    def transfer_extents(
        self,
        kind: IOKind,
        extents: Sequence[Extent],
        block_size: int,
    ) -> float:
        """Issue all ``extents`` in order; return total elapsed ms."""
        start = self.now_ms
        for req in split_for_transfer(
            extents, block_size, self.geometry.max_transfer_bytes
        ):
            self.access(kind, self.block_to_byte(req.start, block_size), req.nbytes)
        return self.now_ms - start

    def synchronous_metadata_write(self, fs_block: int, block_size: int) -> float:
        """One synchronous sector-sized metadata update (inode/directory)."""
        byte = self.block_to_byte(fs_block, block_size)
        return self.access(IOKind.WRITE, byte, self.geometry.sector_size)


class SSDStats:
    """Counters accumulated by an :class:`SSDModel` run.

    Mirrors the :class:`~repro.disk.model.DiskStats` design: a thin
    attribute façade over a private registry, with every event
    additionally mirrored into the process-wide registry when telemetry
    is enabled — and byte-identical behaviour when it is not.
    """

    #: Field order of :meth:`to_dict`.  The first five match the
    #: disk-stats layout so backend-generic consumers line up; the rest
    #: are the flash-specific accounting.
    FIELDS = (
        "reads", "writes", "bytes_read", "bytes_written", "busy_ms",
        "flash_reads", "flash_programs", "flash_erases",
        "gc_runs", "gc_moved_pages", "gc_ms",
        "map_hits", "map_misses", "map_writebacks",
        "host_pages_written",
    )

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        m = registry if registry is not None else MetricsRegistry()
        self._m = m
        self._counters = {name: m.counter(f"ssd.{name}") for name in self.FIELDS}
        c = self._counters
        self._c_reads = c["reads"]
        self._c_writes = c["writes"]
        self._c_bytes_read = c["bytes_read"]
        self._c_bytes_written = c["bytes_written"]
        self._c_busy_ms = c["busy_ms"]
        g = obs.metrics_or_none()
        self._g = g
        if g is not None:
            self._g_counters = {
                name: g.counter(f"ssd.{name}") for name in self.FIELDS
            }
            self._g_service_hist = g.histogram("ssd.service_time_ms")
            self._g_gc_hist = g.histogram("ssd.gc_pause_ms")

    # -- the disk-stats-compatible attribute API -----------------------

    reads = property(lambda self: self._counters["reads"].value)
    writes = property(lambda self: self._counters["writes"].value)
    bytes_read = property(lambda self: self._counters["bytes_read"].value)
    bytes_written = property(lambda self: self._counters["bytes_written"].value)
    busy_ms = property(lambda self: self._counters["busy_ms"].value)
    flash_reads = property(lambda self: self._counters["flash_reads"].value)
    flash_programs = property(lambda self: self._counters["flash_programs"].value)
    flash_erases = property(lambda self: self._counters["flash_erases"].value)
    gc_runs = property(lambda self: self._counters["gc_runs"].value)
    gc_moved_pages = property(lambda self: self._counters["gc_moved_pages"].value)
    gc_ms = property(lambda self: self._counters["gc_ms"].value)
    map_hits = property(lambda self: self._counters["map_hits"].value)
    map_misses = property(lambda self: self._counters["map_misses"].value)
    map_writebacks = property(lambda self: self._counters["map_writebacks"].value)
    host_pages_written = property(
        lambda self: self._counters["host_pages_written"].value
    )

    def record(self, kind: IOKind, nbytes: int, elapsed_ms: float) -> None:
        """Account one completed request."""
        if kind is IOKind.READ:
            self._c_reads.value += 1
            self._c_bytes_read.value += nbytes
        else:
            self._c_writes.value += 1
            self._c_bytes_written.value += nbytes
        self._c_busy_ms.value += elapsed_ms
        if self._g is not None:
            gc = self._g_counters
            if kind is IOKind.READ:
                gc["reads"].inc()
                gc["bytes_read"].inc(nbytes)
            else:
                gc["writes"].inc()
                gc["bytes_written"].inc(nbytes)
            gc["busy_ms"].inc(elapsed_ms)
            self._g_service_hist.observe(elapsed_ms)

    def record_flash(
        self,
        flash_reads: int,
        flash_programs: int,
        flash_erases: int,
        gc_runs: int,
        gc_moved_pages: int,
        host_pages_written: int,
        map_hits: int,
        map_misses: int,
        map_writebacks: int,
        gc_ms: float,
    ) -> None:
        """Account one request's FTL activity (deltas, not totals)."""
        c = self._counters
        c["flash_reads"].value += flash_reads
        c["flash_programs"].value += flash_programs
        c["flash_erases"].value += flash_erases
        c["gc_runs"].value += gc_runs
        c["gc_moved_pages"].value += gc_moved_pages
        c["gc_ms"].value += gc_ms
        c["map_hits"].value += map_hits
        c["map_misses"].value += map_misses
        c["map_writebacks"].value += map_writebacks
        c["host_pages_written"].value += host_pages_written
        if self._g is not None:
            g = self._g_counters
            g["flash_reads"].inc(flash_reads)
            g["flash_programs"].inc(flash_programs)
            g["flash_erases"].inc(flash_erases)
            g["gc_runs"].inc(gc_runs)
            g["gc_moved_pages"].inc(gc_moved_pages)
            g["gc_ms"].inc(gc_ms)
            g["map_hits"].inc(map_hits)
            g["map_misses"].inc(map_misses)
            g["map_writebacks"].inc(map_writebacks)
            g["host_pages_written"].inc(host_pages_written)
            if gc_ms > 0:
                self._g_gc_hist.observe(gc_ms)

    def write_amplification(self) -> float:
        """Data pages programmed per host page written (1.0 = none)."""
        host = self.host_pages_written
        if host == 0:
            return 1.0
        return self.flash_programs / host

    def to_dict(self) -> "dict[str, float]":
        """All counters as a flat, stably ordered plain dict."""
        return {name: self._counters[name].value for name in self.FIELDS}

    def to_document(self) -> "dict[str, object]":
        """Schema-stamped stats record for reports and experiments."""
        document: "dict[str, object]" = {"schema": schemas.SSD_STATS}
        document.update(self.to_dict())
        document["write_amplification"] = round(self.write_amplification(), 4)
        return document

    def throughput_bytes_per_sec(self) -> float:
        """Aggregate throughput over busy time (both directions)."""
        busy_ms = self.busy_ms
        if busy_ms == 0:
            return 0.0
        return (self.bytes_read + self.bytes_written) / (busy_ms / 1000.0)

"""Flash device parameters: the SSD counterpart of ``DiskGeometry``.

Where :class:`~repro.disk.geometry.DiskGeometry` describes Table 1's
Seagate ST32430N mechanically (cylinders, rotation, seek curve), this
describes a small page-mapped SSD electrically: page/block granularity,
per-operation flash latencies, and the FTL knobs (over-provisioning,
GC trigger, mapping-cache size) that determine garbage-collection and
write-amplification behaviour.

The latencies model an early SLC drive: reads stream at ~48 MB/s (a
page read every 60 µs behind a 200 MB/s bus), writes at ~11 MB/s
(program time dominates) — roughly an order of magnitude above the
ST32430N's 5.4 MB/s media rate, as flash genuinely was.  The point of
the comparison is never raw speed, though: on this backend *position
is free* — there is no analogue of the seek or the lost rotation — and
what replaces them is the erase-before-write constraint the FTL
exists to hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict

from repro import schemas
from repro.errors import InvalidRequestError
from repro.units import KB, MB, SECTOR_SIZE

#: Default logical capacity: the formatted capacity of the paper's
#: ST32430N (3992 cylinders x 9 heads x 116 sectors x 512 bytes), so a
#: default-constructed SSD is a drop-in twin of the default disk.
DEFAULT_LOGICAL_BYTES = 2_133_835_776


@dataclass(frozen=True)
class SSDGeometry:
    """Flash layout and timing parameters of the modelled SSD.

    ``nblocks`` counts *physical* erase blocks, including the
    over-provisioned spares the host never sees; ``logical_bytes`` is
    the capacity exported to the file system.  Construct with
    :meth:`for_bytes` to size a device for a given logical capacity.
    """

    #: Flash page: unit of read and program.
    page_size: int = 4096
    #: Pages per erase block (64 x 4 KB = 256 KB erase block).
    pages_per_block: int = 64
    #: Physical erase blocks (the default matches
    #: ``DEFAULT_LOGICAL_BYTES`` at 7% over-provisioning: 8140 logical
    #: blocks + 570 spares; see :meth:`for_bytes`).
    nblocks: int = 8710
    #: Capacity exported to the host in bytes.
    logical_bytes: int = DEFAULT_LOGICAL_BYTES
    #: Flash page read latency (ms).
    read_page_ms: float = 0.06
    #: Flash page program latency (ms).
    program_page_ms: float = 0.35
    #: Erase-block erase latency (ms) — the cost GC pays per victim.
    erase_block_ms: float = 2.0
    #: Host interface rate (bytes/ms); transfers pipeline behind it.
    bus_rate_bytes_per_ms: float = 200 * MB / 1000.0
    #: Fixed per-request overhead (command processing), ms.
    request_overhead_ms: float = 0.02
    #: GC starts when the free-block pool drops to this many blocks.
    gc_free_block_threshold: int = 4
    #: DFTL-style mapping cache: resident translation pages.
    map_cache_tpages: int = 64
    #: Mapping entries per translation page (4 KB page / 4-byte entry).
    map_entries_per_tpage: int = 1024
    #: Same host transfer cap as the disk path (Section 5.1's 64 KB);
    #: higher layers split requests identically for both backends.
    max_transfer_bytes: int = 64 * KB
    #: Sector size for synchronous metadata writes (unit of the
    #: ``synchronous_metadata_write`` contract, not of flash access).
    sector_size: int = SECTOR_SIZE

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.pages_per_block <= 0:
            raise InvalidRequestError(
                f"ssd geometry needs positive page/block sizes: {self}"
            )
        if self.nblocks * self.pages_per_block * self.page_size < self.logical_bytes:
            raise InvalidRequestError(
                f"ssd geometry exports {self.logical_bytes} logical bytes "
                f"but has only {self.nblocks} x {self.pages_per_block} x "
                f"{self.page_size} physical bytes"
            )
        if self.spare_blocks < self.gc_free_block_threshold + 2:
            raise InvalidRequestError(
                f"ssd geometry has {self.spare_blocks} spare blocks; GC "
                f"needs at least gc_free_block_threshold + 2 = "
                f"{self.gc_free_block_threshold + 2} to make progress"
            )

    # Derived quantities -------------------------------------------------

    @cached_property
    def block_bytes(self) -> int:
        """Capacity of one erase block in bytes."""
        return self.page_size * self.pages_per_block

    @cached_property
    def logical_pages(self) -> int:
        """Logical pages the host can address (capacity / page size)."""
        return -(-self.logical_bytes // self.page_size)

    @cached_property
    def physical_pages(self) -> int:
        """Total flash pages including over-provisioned spares."""
        return self.nblocks * self.pages_per_block

    @cached_property
    def spare_blocks(self) -> int:
        """Erase blocks beyond what the logical capacity requires."""
        logical_blocks = -(-self.logical_pages // self.pages_per_block)
        return self.nblocks - logical_blocks

    @cached_property
    def capacity_bytes(self) -> int:
        """Host-visible capacity — the disk-geometry-compatible name."""
        return self.logical_bytes

    # Construction -------------------------------------------------------

    @classmethod
    def for_bytes(
        cls,
        logical_bytes: int,
        over_provisioning: float = 0.07,
        **overrides: object,
    ) -> "SSDGeometry":
        """Size a device exporting ``logical_bytes``.

        ``over_provisioning`` is the spare fraction (0.07 = 7%, a
        consumer-drive figure); the spare pool is floored so GC can
        always run.  Other fields pass through as overrides.
        """
        if logical_bytes <= 0:
            raise InvalidRequestError(
                f"ssd logical capacity must be positive, got {logical_bytes}"
            )
        # Dataclass defaults are readable as class attributes, so the
        # sizing math sees any overridden granularity/threshold without
        # constructing a throwaway (and invalid) instance first.
        page_size = int(overrides.get("page_size", cls.page_size))
        pages_per_block = int(
            overrides.get("pages_per_block", cls.pages_per_block)
        )
        threshold = int(
            overrides.get(
                "gc_free_block_threshold", cls.gc_free_block_threshold
            )
        )
        logical_pages = -(-logical_bytes // page_size)
        logical_blocks = -(-logical_pages // pages_per_block)
        spares = max(
            threshold + 2, int(round(logical_blocks * over_provisioning))
        )
        fields: Dict[str, object] = dict(overrides)
        fields["nblocks"] = logical_blocks + spares
        fields["logical_bytes"] = logical_bytes
        return cls(**fields)  # type: ignore[arg-type]

    # Serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Schema-stamped parameter record for manifests and reports."""
        return {
            "schema": schemas.SSD_CONFIG,
            "page_size": self.page_size,
            "pages_per_block": self.pages_per_block,
            "nblocks": self.nblocks,
            "logical_bytes": self.logical_bytes,
            "spare_blocks": self.spare_blocks,
            "read_page_ms": self.read_page_ms,
            "program_page_ms": self.program_page_ms,
            "erase_block_ms": self.erase_block_ms,
            "bus_rate_bytes_per_ms": self.bus_rate_bytes_per_ms,
            "request_overhead_ms": self.request_overhead_ms,
            "gc_free_block_threshold": self.gc_free_block_threshold,
            "map_cache_tpages": self.map_cache_tpages,
            "map_entries_per_tpage": self.map_entries_per_tpage,
            "max_transfer_bytes": self.max_transfer_bytes,
        }

"""Storage backend selection: one protocol, two substrates.

Everything above the device — benchmarks, experiments, chaos, fault
injection — prices I/O through the ``access(kind, start_byte, nbytes)
-> elapsed_ms`` contract that :class:`~repro.disk.model.DiskModel`
defined and :class:`~repro.ssd.model.SSDModel` now also satisfies.
This module names that contract (:class:`StorageModel`), holds the
process-wide backend selection the CLI's ``--backend disk|ssd`` flag
sets, and builds the right model via :func:`make_storage`.

The selection is process-wide (like :func:`repro.cache.configure`)
because model construction happens deep inside benchmark loops that
have no business threading a backend argument through every layer;
parallel workers re-apply it in their initializer so a fan-out run
matches its serial twin byte for byte.  The default is ``disk``, and
the disk path constructs exactly what the pre-backend code did — same
types, same arguments — so default behaviour is byte-identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional, Protocol, Sequence, Tuple

from repro.disk.geometry import DiskGeometry
from repro.disk.model import DiskModel, IOKind
from repro.disk.request import Extent
from repro.errors import InvalidRequestError
from repro.ssd.config import SSDGeometry
from repro.ssd.model import SSDModel

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "StorageModel",
    "StorageStats",
    "configure",
    "current_backend",
    "using_backend",
    "make_storage",
]

#: Recognised backend names, in presentation order.
BACKENDS: Tuple[str, ...] = ("disk", "ssd")
DEFAULT_BACKEND = "disk"

_backend: str = DEFAULT_BACKEND


class StorageStats(Protocol):
    """What backend-generic code may ask of a model's ``stats``."""

    def to_dict(self) -> "dict[str, float]": ...

    def throughput_bytes_per_sec(self) -> float: ...


class StorageModel(Protocol):
    """The device contract both backends satisfy.

    The timing substrate behind every throughput number: a simulated
    clock (``now_ms``), request-level pricing (:meth:`access`), the
    extent-level helpers the benchmarks drive, and the
    ``read_fault_hook`` seam fault injection uses.
    """

    now_ms: float
    read_fault_hook: Optional[Callable[[int, int], None]]

    @property
    def stats(self) -> StorageStats: ...  # noqa: E704  (protocol member)

    def reset(self, initial_angle: "float | None" = None) -> None: ...

    def idle(self, ms: float) -> None: ...

    def drop_caches(self) -> None: ...

    def access(self, kind: IOKind, start_byte: int, nbytes: int) -> float: ...

    def block_to_byte(self, fs_block: int, block_size: int) -> int: ...

    def transfer_extents(
        self, kind: IOKind, extents: Sequence[Extent], block_size: int
    ) -> float: ...

    def synchronous_metadata_write(
        self, fs_block: int, block_size: int
    ) -> float: ...


def _check(backend: str) -> str:
    if backend not in BACKENDS:
        raise InvalidRequestError(
            f"unknown storage backend {backend!r} "
            f"(choose from {', '.join(BACKENDS)})"
        )
    return backend


def configure(backend: "str | None") -> None:
    """Select the process-wide backend (``None`` leaves it unchanged)."""
    global _backend
    if backend is not None:
        _backend = _check(backend)


def current_backend() -> str:
    """The active backend name — joins cache keys and run manifests."""
    return _backend


@contextmanager
def using_backend(backend: str) -> Iterator[None]:
    """Run a block under ``backend``, restoring the prior selection.

    Lets one process compare backends side by side (the flash
    experiment runs its disk twin this way).
    """
    global _backend
    prior = _backend
    _backend = _check(backend)
    try:
        yield
    finally:
        _backend = prior


def make_storage(
    geometry: "DiskGeometry | None" = None,
    initial_angle: float = 0.0,
    backend: "str | None" = None,
) -> StorageModel:
    """Construct a storage model for the selected backend.

    ``geometry`` is always the *disk* geometry the call site already
    has; the SSD backend derives a flash device of the same logical
    capacity from it, and ignores ``initial_angle`` (no platter — the
    repetition jitter the angle exists to produce is structurally zero
    on flash).  ``backend=None`` uses the process-wide selection.
    """
    chosen = _check(backend) if backend is not None else _backend
    if chosen == "ssd":
        disk_geometry = geometry if geometry is not None else DiskGeometry()
        return SSDModel(SSDGeometry.for_bytes(disk_geometry.capacity_bytes))
    return DiskModel(geometry, initial_angle=initial_angle)

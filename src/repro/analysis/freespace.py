"""Free-space fragmentation statistics.

The paper's motivation rests on an observation from the authors' earlier
study [Smith94]: aged UNIX file systems still contain *many large
clusters of free space* — fragmentation of files is an allocator failure,
not a shortage of free clusters.  These helpers quantify that: the
distribution of free-run lengths, how much free space sits in runs at
least one cluster long, and the largest run per cylinder group.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List

from repro.ffs.filesystem import FileSystem


@dataclass(frozen=True)
class FreeSpaceStats:
    """Summary of a file system's free-space structure."""

    free_blocks: int
    free_frags: int
    n_runs: int
    largest_run: int
    mean_run: float
    #: Fraction of free blocks sitting in runs of at least ``maxcontig``
    #: blocks — the space the realloc policy can actually exploit.
    clusterable_fraction: float

    def to_dict(self) -> Dict[str, float]:
        """Plain-dict form for the JSON export layer (``freespace --json``)."""
        return dataclasses.asdict(self)


def free_cluster_histogram(fs: FileSystem) -> Dict[int, int]:
    """Histogram of free-run lengths across all cylinder groups.

    Keys are run lengths in blocks, values are the number of runs of that
    exact length.
    """
    histogram: Dict[int, int] = {}
    for cg in fs.sb.cgs:
        for _start, length in cg.runmap.runs():
            histogram[length] = histogram.get(length, 0) + 1
    return dict(sorted(histogram.items()))


def free_space_stats(fs: FileSystem) -> FreeSpaceStats:
    """Compute :class:`FreeSpaceStats` for ``fs``."""
    lengths: List[int] = []
    for cg in fs.sb.cgs:
        lengths.extend(length for _start, length in cg.runmap.runs())
    free_blocks = sum(lengths)
    maxcontig = fs.params.maxcontig
    clusterable = sum(length for length in lengths if length >= maxcontig)
    return FreeSpaceStats(
        free_blocks=free_blocks,
        free_frags=fs.sb.free_frags,
        n_runs=len(lengths),
        largest_run=max(lengths) if lengths else 0,
        mean_run=free_blocks / len(lengths) if lengths else 0.0,
        clusterable_fraction=clusterable / free_blocks if free_blocks else 0.0,
    )


def largest_run_per_cg(fs: FileSystem) -> List[int]:
    """The longest free run in each cylinder group, by group index."""
    return [cg.max_free_run() for cg in fs.sb.cgs]

"""Block-placement introspection: the engine behind ``repro-ffs inspect``.

The layout score compresses an entire file system's placement into one
number; this module keeps the spatial structure that number throws
away.  For a (usually aged) file system it answers, group by group and
file by file, the questions Section 4 of the paper argues from:

* **Where does each group's data live?** — per-CG occupancy, blocks
  used, free runs, the cylinder range the group maps onto, and how
  many *spill* blocks it holds (data belonging to files homed in a
  different group — the footprint of allocator fallbacks).
* **Which files paid for fragmentation?** — the largest files with
  their block counts, per-file layout score, and how many groups and
  cylinders their blocks straddle.
* **How fragmented is what's left?** — the free-space profile the
  allocator will have to work with next.

:func:`inspect_filesystem` distils all of this into one plain
``repro.inspect/v1`` document (deterministic for a given image: every
list is sorted, every float rounded), and the render helpers turn one
or two documents into the text tables and comparisons the subcommand
prints.  HTML rendering lives with the other HTML in
:mod:`repro.obs.report_html`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.freespace import free_space_stats
from repro.analysis.layout import file_layout_score, optimal_pairs
from repro.disk.geometry import DiskGeometry
from repro.ffs.filesystem import FileSystem

from repro import schemas

SCHEMA = schemas.INSPECT

__all__ = ["inspect_filesystem", "render_inspection", "render_comparison",
           "SCHEMA"]


def _cylinder_of_block(geo: DiskGeometry, block: int, block_size: int) -> int:
    return geo.cylinder_of_sector(geo.sector_of_byte(block * block_size))


def inspect_filesystem(
    fs: FileSystem,
    label: Optional[str] = None,
    top_files: int = 15,
) -> Dict[str, object]:
    """One deterministic placement document for one file system."""
    params = fs.params
    geo = DiskGeometry()
    frags_per_cg = params.blocks_per_cg * params.frags_per_block

    # --- file walk: home groups, spill, spans, aggregate score --------
    homed: Dict[int, int] = {}
    blocks_in_cg: Dict[int, int] = {}
    spill_in_cg: Dict[int, int] = {}
    optimal_total = countable_total = 0
    files: List[Dict[str, object]] = []
    for inode in sorted(fs.files(), key=lambda i: i.ino):
        block_list = inode.data_block_list()
        optimal, countable = optimal_pairs(block_list)
        optimal_total += optimal
        countable_total += countable
        homed[inode.alloc_cg] = homed.get(inode.alloc_cg, 0) + 1
        touched = set()
        for block in block_list:
            cg = params.cg_of_block(block)
            touched.add(cg)
            blocks_in_cg[cg] = blocks_in_cg.get(cg, 0) + 1
            if cg != inode.alloc_cg:
                spill_in_cg[cg] = spill_in_cg.get(cg, 0) + 1
        score = file_layout_score(inode)
        cyls = [
            _cylinder_of_block(geo, b, params.block_size) for b in block_list
        ]
        files.append({
            "ino": inode.ino,
            "size": inode.size,
            "blocks": len(block_list),
            "home_cg": inode.alloc_cg,
            "cg_span": len(touched),
            "cyl_span": (max(cyls) - min(cyls) + 1) if cyls else 0,
            "layout_score": round(score, 4) if score is not None else None,
        })
    files.sort(key=lambda f: (-int(f["size"]), f["ino"]))  # type: ignore[call-overload, arg-type]
    files = files[:top_files]

    # --- group walk: occupancy, free structure, cylinder range --------
    groups: List[Dict[str, object]] = []
    for cg in fs.sb.cgs:
        runs = [length for _start, length in cg.runmap.runs()]
        base = params.cg_base_block(cg.index)
        last = base + params.blocks_per_cg - 1
        groups.append({
            "cg": cg.index,
            "occupancy": round(1.0 - cg.free_frags / frags_per_cg, 4),
            "files_homed": homed.get(cg.index, 0),
            "data_blocks": blocks_in_cg.get(cg.index, 0),
            "spill_blocks": spill_in_cg.get(cg.index, 0),
            "free_blocks": cg.free_blocks,
            "free_runs": len(runs),
            "largest_free_run": max(runs) if runs else 0,
            "cylinders": [
                _cylinder_of_block(geo, base, params.block_size),
                _cylinder_of_block(geo, last, params.block_size),
            ],
        })

    stats = free_space_stats(fs)
    return {
        "schema": SCHEMA,
        "label": label or fs.policy.name,
        "policy": fs.policy.name,
        "params": {
            "block_size": params.block_size,
            "frag_size": params.frag_size,
            "ncg": params.ncg,
            "maxcontig": params.maxcontig,
        },
        "files_total": len(fs.files()),
        "utilization": round(fs.utilization(), 4),
        "aggregate_layout_score": round(
            optimal_total / countable_total, 4
        ) if countable_total else 1.0,
        "freespace": stats.to_dict(),
        "groups": groups,
        "files": files,
    }


def _groups_table(document: Dict[str, object]) -> str:
    from repro.analysis.report import render_table

    rows = []
    for g in document["groups"]:  # type: ignore[union-attr]
        cyl_lo, cyl_hi = g["cylinders"]
        rows.append([
            str(g["cg"]),
            f"{g['occupancy']:.2f}",
            str(g["files_homed"]),
            str(g["data_blocks"]),
            str(g["spill_blocks"]),
            str(g["free_runs"]),
            str(g["largest_free_run"]),
            f"{cyl_lo}-{cyl_hi}",
        ])
    return render_table(
        ["cg", "occ", "files", "blocks", "spill", "runs", "max run",
         "cylinders"],
        rows,
        title="cylinder groups",
    )


def _files_table(document: Dict[str, object]) -> str:
    from repro.analysis.report import render_table
    from repro.units import fmt_size

    rows = []
    for f in document["files"]:  # type: ignore[union-attr]
        score = f["layout_score"]
        rows.append([
            str(f["ino"]),
            fmt_size(int(f["size"])),
            str(f["blocks"]),
            str(f["home_cg"]),
            str(f["cg_span"]),
            str(f["cyl_span"]),
            f"{score:.3f}" if score is not None else "-",
        ])
    return render_table(
        ["ino", "size", "blocks", "home cg", "cg span", "cyl span", "score"],
        rows,
        title=f"largest files (top {len(rows)} of "
        f"{document['files_total']})",
    )


def render_inspection(document: Dict[str, object]) -> str:
    """``repro-ffs inspect``'s text form of one placement document."""
    free = document["freespace"]
    head = (
        f"placement inspection — {document['label']} "
        f"(policy {document['policy']})\n"
        f"  utilization {document['utilization']:.0%} · aggregate layout "
        f"score {document['aggregate_layout_score']:.3f}\n"
        f"  free space: {free['free_blocks']:.0f} blocks in "  # type: ignore[index, call-overload]
        f"{free['n_runs']:.0f} runs, largest {free['largest_run']:.0f}, "  # type: ignore[index, call-overload]
        f"clusterable {free['clusterable_fraction']:.0%}"  # type: ignore[index, call-overload]
    )
    return "\n".join([
        head, "", _groups_table(document), "", _files_table(document),
    ])


def render_comparison(
    left: Dict[str, object], right: Dict[str, object]
) -> str:
    """Policy-vs-policy placement comparison, group by group."""
    from repro.analysis.report import render_table

    summary_rows = []
    for key, fmt in (
        ("utilization", "{:.2f}"),
        ("aggregate_layout_score", "{:.3f}"),
        ("files_total", "{}"),
    ):
        summary_rows.append([
            key.replace("_", " "),
            fmt.format(left[key]),
            fmt.format(right[key]),
        ])
    lf = left["freespace"]
    rf = right["freespace"]
    for key in ("n_runs", "largest_run", "clusterable_fraction"):
        summary_rows.append([
            key.replace("_", " "),
            f"{lf[key]:g}",  # type: ignore[index, call-overload]
            f"{rf[key]:g}",  # type: ignore[index, call-overload]
        ])
    out = [render_table(
        ["metric", str(left["label"]), str(right["label"])],
        summary_rows,
        title="placement comparison",
    )]
    lg = {g["cg"]: g for g in left["groups"]}  # type: ignore[union-attr]
    rg = {g["cg"]: g for g in right["groups"]}  # type: ignore[union-attr]
    rows = []
    for cg in sorted(set(lg) & set(rg)):
        a, b = lg[cg], rg[cg]
        rows.append([
            str(cg),
            f"{a['occupancy']:.2f}",
            f"{b['occupancy']:.2f}",
            str(a["spill_blocks"]),
            str(b["spill_blocks"]),
            str(a["largest_free_run"]),
            str(b["largest_free_run"]),
        ])
    ll, rl = str(left["label"]), str(right["label"])
    out.append(render_table(
        ["cg", f"occ {ll}", f"occ {rl}", f"spill {ll}", f"spill {rl}",
         f"max run {ll}", f"max run {rl}"],
        rows,
        title="per-group comparison",
    ))
    return "\n\n".join(out)

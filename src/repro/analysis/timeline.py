"""Per-day time series of file-system health during aging.

Figures 1 and 2 plot the aggregate layout score at the end of each
simulated day; :class:`Timeline` collects those samples (plus utilization
and operation counts, which the paper reports in its workload
description) and offers the summary numbers quoted in the text — the
score after day one, the final score, and the final-day improvement of
one timeline over another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class DailySample:
    """State of an aging file system at the end of one simulated day."""

    day: int
    layout_score: float
    utilization: float
    live_files: int
    ops_applied: int


@dataclass
class Timeline:
    """Ordered daily samples from one aging run."""

    label: str
    samples: List[DailySample] = field(default_factory=list)

    def add(self, sample: DailySample) -> None:
        """Append a sample; days must be non-decreasing."""
        if self.samples and sample.day < self.samples[-1].day:
            raise ValueError(
                f"sample for day {sample.day} arrived after day "
                f"{self.samples[-1].day}"
            )
        self.samples.append(sample)

    def days(self) -> List[int]:
        """The day indices, in order."""
        return [s.day for s in self.samples]

    def scores(self) -> List[float]:
        """The aggregate layout scores, in day order."""
        return [s.layout_score for s in self.samples]

    def score_on(self, day: int) -> Optional[float]:
        """The layout score on a specific day, or None if unsampled."""
        for sample in self.samples:
            if sample.day == day:
                return sample.layout_score
        return None

    def final_score(self) -> float:
        """Layout score at the end of the run."""
        if not self.samples:
            raise ValueError("timeline has no samples")
        return self.samples[-1].layout_score

    def first_day_score(self) -> float:
        """Layout score after the first simulated day."""
        if not self.samples:
            raise ValueError("timeline has no samples")
        return self.samples[0].layout_score

    def fragmentation_improvement_over(self, other: "Timeline") -> float:
        """Relative reduction in *fragmentation* versus ``other``.

        The paper's headline: non-optimal blocks fell from 23.4% to
        10.1%, "an improvement of 56.8%".  Fragmentation is
        ``1 - layout_score``; the improvement is the relative reduction.
        """
        mine = 1.0 - self.final_score()
        theirs = 1.0 - other.final_score()
        if theirs == 0:
            return 0.0
        return (theirs - mine) / theirs

"""Analysis tools: layout scores, free-space fragmentation, timelines.

The layout score is the paper's central metric (Section 3.3): the
fraction of a file's blocks that are *optimally allocated*, i.e.
physically contiguous with the previous block of the same file.  This
package computes it for files, file sets, whole file systems, and as a
function of file size, plus the free-space fragmentation statistics the
authors' earlier study ([Smith94]) used to motivate the work.
"""

from repro.analysis.layout import (
    aggregate_layout_score,
    file_layout_score,
    layout_by_size_bins,
    score_file_set,
)
from repro.analysis.freespace import free_cluster_histogram, free_space_stats
from repro.analysis.timeline import DailySample, Timeline

__all__ = [
    "aggregate_layout_score",
    "file_layout_score",
    "layout_by_size_bins",
    "score_file_set",
    "free_cluster_histogram",
    "free_space_stats",
    "DailySample",
    "Timeline",
]

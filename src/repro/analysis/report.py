"""Text rendering of the paper's tables and figures.

There is no plotting dependency in the reproduction environment, so the
experiment harness renders each figure as an ASCII chart (good enough to
see the curve shapes, crossovers, and dips the paper discusses) and each
table as aligned text.  The numeric series themselves are also returned
by every experiment, so EXPERIMENTS.md and the tests work with exact
values rather than pictures.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

Series = Tuple[str, Sequence[float], Sequence[Optional[float]]]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table with a rule under the header."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_chart(
    series: Sequence[Series],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render line series as an ASCII chart.

    Each series is (label, xs, ys); ys may contain None for missing
    points.  Series are drawn with distinct marker characters and a
    legend.  ``log_x`` plots the x axis in log2 space (file-size axes).
    """
    markers = "*o+x#@%&"
    points: List[Tuple[float, float, str]] = []
    xs_all: List[float] = []
    ys_all: List[float] = []
    for idx, (_label, xs, ys) in enumerate(series):
        marker = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            if y is None:
                continue
            fx = math.log2(x) if log_x else float(x)
            points.append((fx, float(y), marker))
            xs_all.append(fx)
            ys_all.append(float(y))
    lines: List[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    x_lo, x_hi = min(xs_all), max(xs_all)
    if y_range is not None:
        y_lo, y_hi = y_range
    else:
        y_lo, y_hi = min(ys_all), max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for fx, fy, marker in points:
        col = round((fx - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((fy - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker
    axis_width = 8
    for i, row_cells in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        label = f"{y_val:7.2f}|" if i % 4 == 0 or i == height - 1 else "       |"
        lines.append(label + "".join(row_cells))
    lines.append(" " * (axis_width - 1) + "+" + "-" * width)
    left = f"{_unlog(x_lo, log_x):g}"
    right = f"{_unlog(x_hi, log_x):g}"
    pad = max(1, width - len(left) - len(right))
    lines.append(" " * axis_width + left + " " * pad + right)
    if xlabel:
        lines.append(" " * axis_width + xlabel.center(width))
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {label}"
        for i, (label, _xs, _ys) in enumerate(series)
    )
    lines.append("  legend: " + legend)
    if ylabel:
        lines.insert(1 if title else 0, f"  [y: {ylabel}]")
    return "\n".join(lines)


#: Row order and labels/formatters for :func:`render_disk_stats`.
_DISK_STAT_ROWS = (
    ("reads", "requests read", "{:,.0f}"),
    ("writes", "requests written", "{:,.0f}"),
    ("bytes_read", "bytes read", "{:,.0f}"),
    ("bytes_written", "bytes written", "{:,.0f}"),
    ("busy_ms", "busy time (ms)", "{:,.1f}"),
    ("seeks", "seeks", "{:,.0f}"),
    ("seek_ms", "seek time (ms)", "{:,.1f}"),
    ("rotation_ms", "rotational wait (ms)", "{:,.1f}"),
    ("lost_rotations", "lost rotations", "{:,.0f}"),
    ("buffer_hits", "track-buffer hits", "{:,.0f}"),
)


def render_disk_stats(stats: Dict[str, float], title: str = "Disk statistics") -> str:
    """Render a :meth:`~repro.disk.model.DiskStats.to_dict` as a table.

    One shared renderer replaces per-caller attribute poking: any
    experiment or CLI command that has disk counters — live or read back
    from a run manifest — prints them with the same labels and the same
    derived throughput line.
    """
    rows = [
        (label, fmt.format(stats[key]))
        for key, label, fmt in _DISK_STAT_ROWS
        if key in stats
    ]
    table = render_table(["counter", "value"], rows, title=title)
    busy_ms = stats.get("busy_ms", 0.0)
    if busy_ms:
        total = stats.get("bytes_read", 0) + stats.get("bytes_written", 0)
        mb_s = total / (busy_ms / 1000.0) / (1024.0 * 1024.0)
        table += f"\n  aggregate throughput: {mb_s:.2f} MB/sec over busy time"
    return table


def render_csv(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render series as CSV text (for external plotting tools).

    Values are stringified minimally; None becomes an empty field.
    """
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(
            ",".join("" if cell is None else f"{cell}" for cell in row)
        )
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.1f}"
    return str(value)


def _unlog(value: float, log_x: bool) -> float:
    return 2.0**value if log_x else value

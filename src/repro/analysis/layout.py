"""Layout score: the paper's fragmentation metric (Section 3.3).

Definitions, verbatim from the paper:

* A block is **optimally allocated** when it is physically contiguous
  with the previous block of the same file.
* A file's **layout score** is the fraction of its blocks that are
  optimally allocated, excluding the first block (which has no previous
  block).  One-block files have no defined layout score.
* A file system's **aggregate layout score** is the fraction of all
  *countable* blocks (every block except each file's first, over files of
  two or more blocks) that are optimally allocated.

A fragment tail counts as a block at the address of the block holding its
fragments, which matches how the paper's analysis tool walked the real
file systems' block pointers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ffs.filesystem import FileSystem
from repro.ffs.inode import Inode
from repro.units import KB


def optimal_pairs(block_list: Sequence[int]) -> Tuple[int, int]:
    """(optimally allocated blocks, countable blocks) for one block list."""
    countable = max(0, len(block_list) - 1)
    optimal = sum(
        1
        for prev, cur in zip(block_list, block_list[1:])
        if cur == prev + 1
    )
    return optimal, countable


def file_layout_score(inode: Inode) -> Optional[float]:
    """Layout score of one file; None when undefined (fewer than 2 blocks)."""
    optimal, countable = optimal_pairs(inode.data_block_list())
    if countable == 0:
        return None
    return optimal / countable


def score_file_set(inodes: Iterable[Inode]) -> Optional[float]:
    """Aggregate layout score over a set of files.

    Files with fewer than two blocks contribute nothing, per the paper's
    definition.  Returns None when no file in the set is scorable.
    """
    optimal = countable = 0
    for inode in inodes:
        o, c = optimal_pairs(inode.data_block_list())
        optimal += o
        countable += c
    if countable == 0:
        return None
    return optimal / countable


def aggregate_layout_score(fs: FileSystem) -> float:
    """Aggregate layout score of all regular files on ``fs``.

    Returns 1.0 for a file system with no scorable files (an empty file
    system is trivially unfragmented).
    """
    score = score_file_set(fs.files())
    return 1.0 if score is None else score


def default_size_bins(
    smallest: int = 16 * KB, largest: int = 32 * 1024 * KB
) -> List[int]:
    """The power-of-two size points of Figures 3, 5, and 6 (16 KB–32 MB)."""
    bins: List[int] = []
    size = smallest
    while size <= largest:
        bins.append(size)
        size *= 2
    return bins


def layout_by_size_bins(
    inodes: Iterable[Inode],
    bins: Optional[Sequence[int]] = None,
) -> Dict[int, Optional[float]]:
    """Aggregate layout score per size bin, as in Figure 3.

    Each file is assigned to the bin whose size is nearest in log space,
    then the aggregate score is computed per bin.  Bins with no scorable
    files map to None.
    """
    if bins is None:
        bins = default_size_bins()
    log_bins = [math.log2(b) for b in bins]
    per_bin: Dict[int, List[Inode]] = {b: [] for b in bins}
    for inode in inodes:
        if inode.size <= 0:
            continue
        log_size = math.log2(inode.size)
        nearest = min(range(len(bins)), key=lambda i: abs(log_bins[i] - log_size))
        per_bin[bins[nearest]].append(inode)
    return {b: score_file_set(members) for b, members in per_bin.items()}


def layout_by_block_count(
    inodes: Iterable[Inode],
) -> Dict[int, Optional[float]]:
    """Aggregate layout score keyed by the file's chunk count.

    Finer-grained companion to :func:`layout_by_size_bins`; this is where
    the two-block quirk (Section 4) is sharpest.
    """
    per_count: Dict[int, List[Inode]] = {}
    for inode in inodes:
        per_count.setdefault(inode.n_chunks(), []).append(inode)
    return {
        count: score_file_set(members)
        for count, members in sorted(per_count.items())
    }

"""The repair pass: classify damage, fix it, rebuild every redundant view.

Repair runs in phases, mirroring a real ``fsck``'s passes:

1. **Inode table** — re-key the table by each inode's own ``ino`` field.
2. **Claims scan** — walk inodes in ascending inode order and claim
   every fragment they reference.  A fragment claimed twice is the
   *doubly-allocated* class (a crashed delete resurrected an inode whose
   space was reused); the **earlier claimant wins** and the later inode
   is truncated at the first conflicting unit, deterministically.
3. **Inode sanity** — clamp sizes exceeding the (possibly truncated)
   capacity (the *truncated file* class, e.g. a torn append) and repair
   blocks-but-no-size inodes.
4. **Map rebuild** — throw away every cylinder group's fragment bitmap,
   cluster run map, and inode usage map and rebuild them from the now
   self-consistent inode table, preserving allocation rotors.  Space the
   old maps held that no inode references is the *orphaned blocks*
   class; space inodes reference that the old maps thought free is the
   mirror image (a resurrected file whose frees were durable).
5. **Directory repair** — drop entries naming dead inodes (*dead
   dirents*), deduplicate multiple memberships, and reattach *orphaned
   inodes* (live files in no directory) to a ``lost+found`` directory
   created on the spot; if even that allocation fails the orphans are
   released instead.
6. **Verify** — the repaired system must pass
   :func:`repro.ffs.check.check_filesystem`; anything less is a bug in
   this module, not in the caller's data.

All decisions are order-deterministic (ascending inode number,
directory insertion order); repairing the same damaged file system twice
yields identical results, and repairing an undamaged one changes
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import OutOfSpaceError, SimulationError
from repro.ffs.bitmap import FragBitmap
from repro.ffs.check import check_filesystem
from repro.ffs.clustermap import BlockRunMap
from repro.ffs.directory import Directory
from repro.ffs.filesystem import FileSystem
from repro.ffs.image import FORMAT_NAME, FORMAT_VERSION, inode_from_json
from repro.ffs.params import FSParams

#: Name of the directory orphaned inodes are reattached to.
LOST_FOUND = "lost+found"

FragKey = Tuple[int, int]  # (global block, fragment offset)


@dataclass
class FsckReport:
    """What the repair pass found and did, by damage class."""

    rekeyed_inodes: int = 0
    #: Inodes truncated because an earlier inode already claimed their
    #: space (each counted once, however many fragments conflicted).
    doubly_allocated: int = 0
    #: Inodes whose recorded size exceeded their block/tail capacity.
    truncated_files: int = 0
    #: Inodes with data chunks but a non-positive size.
    sizeless_files: int = 0
    #: Fragments the old maps held allocated that no inode references
    #: (freed by the rebuild).
    orphaned_frags: int = 0
    #: Fragments inodes reference that the old maps thought were free
    #: (claimed by the rebuild).
    unrecorded_frags: int = 0
    #: Directory entries naming dead inodes, removed.
    dead_dirents: int = 0
    #: Extra directory memberships of multiply-listed files, removed.
    duplicate_dirents: int = 0
    #: Live file inodes found in no directory and reattached.
    orphaned_inodes: int = 0
    #: Orphans released because ``lost+found`` could not be created.
    dropped_inodes: int = 0
    #: Set when a ``lost+found`` directory was created for orphans.
    lost_found: Optional[str] = None
    #: Human-readable notes, one per repair action (stable order).
    notes: List[str] = field(default_factory=list)

    def clean(self) -> bool:
        """True when the scan found nothing to repair."""
        return all(
            count == 0
            for count in (
                self.rekeyed_inodes,
                self.doubly_allocated,
                self.truncated_files,
                self.sizeless_files,
                self.orphaned_frags,
                self.unrecorded_frags,
                self.dead_dirents,
                self.duplicate_dirents,
                self.orphaned_inodes,
                self.dropped_inodes,
            )
        ) and self.lost_found is None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (chaos reports, ``fsck --output``)."""
        return {
            "clean": self.clean(),
            "rekeyed_inodes": self.rekeyed_inodes,
            "doubly_allocated": self.doubly_allocated,
            "truncated_files": self.truncated_files,
            "sizeless_files": self.sizeless_files,
            "orphaned_frags": self.orphaned_frags,
            "unrecorded_frags": self.unrecorded_frags,
            "dead_dirents": self.dead_dirents,
            "duplicate_dirents": self.duplicate_dirents,
            "orphaned_inodes": self.orphaned_inodes,
            "dropped_inodes": self.dropped_inodes,
            "lost_found": self.lost_found,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Multi-line human-readable summary."""
        if self.clean():
            return "fsck: clean (nothing to repair)"
        lines = ["fsck: repaired"]
        for label, count in (
            ("inode table entries re-keyed", self.rekeyed_inodes),
            ("doubly-allocated inodes truncated", self.doubly_allocated),
            ("oversized files clamped", self.truncated_files),
            ("sizeless files repaired", self.sizeless_files),
            ("orphaned fragments freed", self.orphaned_frags),
            ("unrecorded fragments claimed", self.unrecorded_frags),
            ("dead directory entries removed", self.dead_dirents),
            ("duplicate directory entries removed", self.duplicate_dirents),
            ("orphaned inodes reattached", self.orphaned_inodes),
            ("orphaned inodes dropped", self.dropped_inodes),
        ):
            if count:
                lines.append(f"  {label}: {count}")
        if self.lost_found is not None:
            lines.append(f"  orphans attached under: {self.lost_found}")
        return "\n".join(lines)


def repair_filesystem(
    fs: FileSystem, trust_maps: bool = True, verify: bool = True
) -> FsckReport:
    """Repair ``fs`` in place; returns the :class:`FsckReport`.

    With ``trust_maps`` (the default) the pre-repair allocation maps are
    treated as the durable on-disk state and their drift from the inode
    table is reported as orphaned/unrecorded fragments.  Pass ``False``
    when the maps are known to be meaningless — e.g. a skeleton-loaded
    image, whose format never stores maps at all.

    With ``verify`` (the default) the repaired system is run through
    :func:`~repro.ffs.check.check_filesystem` before returning, so a
    successful repair is a *proven* repair.
    """
    report = FsckReport()
    _rekey_inodes(fs, report)
    _resolve_claims(fs, report)
    _clamp_sizes(fs, report)
    _rebuild_maps(fs, report, trust_maps=trust_maps)
    _repair_directories(fs, report)
    _reconcile_bookkeeping(fs)
    if verify:
        check_filesystem(fs)
    return report


# ----------------------------------------------------------------------
# Phase 1: inode table
# ----------------------------------------------------------------------


def _rekey_inodes(fs: FileSystem, report: FsckReport) -> None:
    """Make the inode table's keys match each inode's ``ino`` field."""
    if all(ino == inode.ino for ino, inode in fs.inodes.items()):
        return
    rekeyed = {}
    for ino, inode in fs.inodes.items():
        if ino != inode.ino:
            report.rekeyed_inodes += 1
            report.notes.append(
                f"inode table key {ino} re-keyed to inode.ino {inode.ino}"
            )
        rekeyed[inode.ino] = inode
    fs.inodes.clear()
    fs.inodes.update(rekeyed)


# ----------------------------------------------------------------------
# Phase 2: claims scan
# ----------------------------------------------------------------------


def _resolve_claims(fs: FileSystem, report: FsckReport) -> None:
    """Claim every referenced fragment; truncate later double-claimants.

    Claims are atomic per unit (whole block, indirect block, fragment
    tail): a unit either claims all its fragments or the claiming inode
    loses the unit.  Inodes are scanned in ascending inode order, so the
    earlier inode always keeps the space — the same file wins no matter
    what damage produced the conflict.
    """
    params = fs.params
    fpb = params.frags_per_block
    claimed: Set[FragKey] = set()
    for cg in fs.sb.cgs:
        for local in range(params.metadata_blocks_per_cg):
            for off in range(fpb):
                claimed.add((cg.base + local, off))

    def try_claim_block(block: int) -> bool:
        frags = {(block, off) for off in range(fpb)}
        if frags & claimed:
            return False
        claimed.update(frags)
        return True

    for ino in sorted(fs.inodes):
        inode = fs.inodes[ino]
        conflicted = False
        kept_blocks: List[int] = []
        for block in inode.blocks:
            if not conflicted and try_claim_block(block):
                kept_blocks.append(block)
            else:
                # First conflict truncates the file here: the blocks
                # after a lost block would be unreachable anyway.
                conflicted = True
        if conflicted:
            inode.blocks = kept_blocks
            inode.tail = None
        kept_indirects = [
            block for block in inode.indirect_blocks if try_claim_block(block)
        ]
        if len(kept_indirects) != len(inode.indirect_blocks):
            conflicted = True
            inode.indirect_blocks = kept_indirects
        if inode.tail is not None:
            block, offset, nfrags = inode.tail
            frags = {(block, off) for off in range(offset, offset + nfrags)}
            if frags & claimed:
                conflicted = True
                inode.tail = None
            else:
                claimed.update(frags)
        if conflicted:
            report.doubly_allocated += 1
            report.notes.append(
                f"inode {ino} truncated: space already claimed by an "
                f"earlier inode"
            )


# ----------------------------------------------------------------------
# Phase 3: inode sanity
# ----------------------------------------------------------------------


def _clamp_sizes(fs: FileSystem, report: FsckReport) -> None:
    params = fs.params
    for ino in sorted(fs.inodes):
        inode = fs.inodes[ino]
        capacity = len(inode.blocks) * params.block_size
        if inode.tail is not None:
            capacity += inode.tail[2] * params.frag_size
        if inode.size > capacity:
            report.truncated_files += 1
            report.notes.append(
                f"inode {ino} size {inode.size} clamped to capacity "
                f"{capacity}"
            )
            inode.size = capacity
        elif inode.size <= 0 and capacity > 0 and not inode.is_dir:
            # Blocks landed but the size update did not: the only
            # self-consistent size we can assert is the capacity.
            report.sizeless_files += 1
            report.notes.append(
                f"inode {ino} had blocks but size {inode.size}; set to "
                f"capacity {capacity}"
            )
            inode.size = capacity


# ----------------------------------------------------------------------
# Phase 4: map rebuild
# ----------------------------------------------------------------------


def _rebuild_maps(
    fs: FileSystem, report: FsckReport, trust_maps: bool
) -> None:
    """Rebuild every redundant per-group view from the inode table."""
    params = fs.params
    old_free = [cg.free_frags for cg in fs.sb.cgs]
    for cg in fs.sb.cgs:
        cg.bitmap = FragBitmap(cg.nblocks, params.frags_per_block)
        cg.runmap = BlockRunMap(cg.nblocks)
        cg._inode_used = bytearray(params.inodes_per_cg)
        cg.nifree = params.inodes_per_cg
        cg.ndirs = 0
        for local in range(params.metadata_blocks_per_cg):
            cg._take_whole_block(local)
        # The rotor is a hint, not redundant state: preserve it so the
        # repaired system's future allocation decisions match a system
        # that was never damaged.
    for ino in sorted(fs.inodes):
        inode = fs.inodes[ino]
        fs.sb.cgs[params.cg_of_inode(ino)].alloc_inode_at(
            ino, is_dir=inode.is_dir
        )
        for block in inode.blocks:
            fs.sb.cg_of_block(block).alloc_block_at(block)
        for block in inode.indirect_blocks:
            fs.sb.cg_of_block(block).alloc_block_at(block)
        if inode.tail is not None:
            block, offset, nfrags = inode.tail
            fs.sb.cg_of_block(block).alloc_frags_at(block, offset, nfrags)
    if not trust_maps:
        return
    for index, cg in enumerate(fs.sb.cgs):
        drift = cg.free_frags - old_free[index]
        if drift > 0:
            report.orphaned_frags += drift
        elif drift < 0:
            report.unrecorded_frags += -drift
    if report.orphaned_frags:
        report.notes.append(
            f"{report.orphaned_frags} orphaned fragments freed by map "
            f"rebuild"
        )
    if report.unrecorded_frags:
        report.notes.append(
            f"{report.unrecorded_frags} referenced fragments were free in "
            f"the old maps"
        )


# ----------------------------------------------------------------------
# Phase 5: directories
# ----------------------------------------------------------------------


def _repair_directories(fs: FileSystem, report: FsckReport) -> None:
    seen: Set[int] = set()
    for directory in fs.directories.values():
        for child in directory.list_children():
            if child not in fs.inodes:
                directory.remove(child)
                report.dead_dirents += 1
                report.notes.append(
                    f"directory {directory.name!r} listed dead inode "
                    f"{child}"
                )
            elif child in seen:
                directory.remove(child)
                report.duplicate_dirents += 1
                report.notes.append(
                    f"directory {directory.name!r} duplicated inode "
                    f"{child}"
                )
            else:
                seen.add(child)
    orphans = [
        ino
        for ino in sorted(fs.inodes)
        if not fs.inodes[ino].is_dir and ino not in seen
    ]
    if not orphans:
        return
    lost_found = fs.directories.get(LOST_FOUND)
    if lost_found is None:
        try:
            lost_found = fs.make_directory(LOST_FOUND)
            report.lost_found = LOST_FOUND
        except OutOfSpaceError:
            # Not even one fragment spare: release the orphans instead
            # (their space returns through the normal free paths, so the
            # maps stay consistent).
            for ino in orphans:
                inode = fs.inodes.pop(ino)
                fs._free_data(inode)
                fs.sb.cgs[fs.params.cg_of_inode(ino)].free_inode(ino)
                report.dropped_inodes += 1
                report.notes.append(
                    f"orphan inode {ino} released (no space for "
                    f"{LOST_FOUND!r})"
                )
            return
    for ino in orphans:
        lost_found.add(ino)
        report.orphaned_inodes += 1
        report.notes.append(
            f"orphan inode {ino} reattached under {LOST_FOUND!r}"
        )


# ----------------------------------------------------------------------
# Phase 5b: derived bookkeeping
# ----------------------------------------------------------------------


def _reconcile_bookkeeping(fs: FileSystem) -> None:
    """Rebuild ``_dir_of_file`` and ``_realloc_mark`` from repaired state."""
    fs._dir_of_file.clear()
    for directory in fs.directories.values():
        for child in directory.list_children():
            if not fs.inodes[child].is_dir:
                fs._dir_of_file[child] = directory.name
    fs._realloc_mark.clear()
    for ino, inode in fs.inodes.items():
        if not inode.is_dir:
            fs._realloc_mark[ino] = len(inode.blocks)


# ----------------------------------------------------------------------
# Tolerant image loading
# ----------------------------------------------------------------------


def skeleton_from_document(document: Dict[str, Any]) -> FileSystem:
    """Load an image *without* marking maps or verifying anything.

    :func:`repro.ffs.image.filesystem_from_document` refuses corrupt
    images — re-marking a doubly-claimed block raises before any repair
    could run.  This loader builds the skeleton only (parameters,
    inodes, directories, rotors), leaving every allocation map empty;
    follow it with ``repair_filesystem(fs, trust_maps=False)`` to
    rebuild the maps and repair whatever the image got wrong.
    """
    if document.get("format") != FORMAT_NAME:
        raise SimulationError("not a repro-ffs image")
    if document.get("version") != FORMAT_VERSION:
        raise SimulationError(
            f"image version {document.get('version')} not supported "
            f"(expected {FORMAT_VERSION})"
        )
    params = FSParams(**document["params"])
    fs = FileSystem(params, policy=document["policy"])
    for blob in document["inodes"]:
        inode = inode_from_json(blob)
        fs.inodes[inode.ino] = inode
    for blob in document["directories"]:
        directory = Directory(name=blob["name"], ino=blob["ino"], cg=blob["cg"])
        for child in blob["children"]:
            directory.add(child)
        fs.directories[directory.name] = directory
    fs._dir_of_file.update(
        {int(ino): name for ino, name in document["file_directory"].items()}
    )
    for cg, rotor in zip(fs.sb.cgs, document.get("rotors", [])):
        cg.rotor = rotor
    return fs

"""``repro.fsck`` — scan-and-repair for damaged simulated file systems.

:func:`repro.ffs.check.check_filesystem` is the *detector*: it treats
the inode and directory tables as ground truth, rebuilds every redundant
view (fragment bitmap, per-CG free counts, cluster run map, frag-run
index, inode usage map), and raises on the first mismatch.  This package
is the matching *repairer*: :func:`repair_filesystem` performs the same
scan but instead of raising it classifies the damage, fixes the
authoritative state where it is self-contradictory (doubly-claimed
fragments, sizes exceeding capacity, dead or duplicated directory
entries, orphaned inodes), rebuilds every redundant view from scratch,
and returns a typed :class:`FsckReport`.  A repaired file system always
passes ``check_filesystem``; an undamaged file system is left
byte-identical (the report comes back :meth:`FsckReport.clean`).

The damage classes are exactly those :mod:`repro.faults` can inject by
crashing an aging replay mid-flight — the two packages are designed as
a pair, and ``repro-ffs chaos`` exercises the full
inject → repair → verify loop.
"""

from __future__ import annotations

from repro.fsck.repair import (
    LOST_FOUND,
    FsckReport,
    repair_filesystem,
    skeleton_from_document,
)

__all__ = [
    "LOST_FOUND",
    "FsckReport",
    "repair_filesystem",
    "skeleton_from_document",
]

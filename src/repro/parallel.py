"""``repro.parallel`` — fan the experiment suite across processes.

The experiments are independent once the aged file systems exist, and
the agings themselves (policy x workload) are independent of each
other, so ``experiment all --jobs N`` runs in two waves on a
``ProcessPoolExecutor``:

1. **pre-warm** — one task per aging the suite depends on (FFS,
   realloc, and the ground-truth "Real" run).  Each worker replays its
   workload and persists the result into the shared
   :mod:`repro.cache` store; this wave is skipped when the cache is
   disabled, since there would be nowhere to share the results.
2. **experiments** — one task per experiment *group*, in the paper's
   order.  Workers read the now-warm cache instead of re-aging, render
   their results, and ship the *text* home (results embed whole
   simulated file systems; pickling them back would cost more than it
   saves).  Experiments that share memoized work — Figure 5 reads
   Figure 4's sweep, Figure 6 builds on Figure 5 — are grouped into a
   single task (:data:`_AFFINITY`), because splitting them across
   workers would re-run the shared sweep once per worker and hand back
   the wall-clock time parallelism just saved.

Results stream back in paper order — the consumer blocks on the next
experiment in sequence while later ones keep running — and stdout is
byte-identical to the serial path because both sides run the very same
render code on behaviourally identical file systems (the image layer
round-trips allocator state exactly; ``tests/test_parallel.py`` pins
this).

Telemetry composes: when the parent has an active :mod:`repro.obs`
session, each worker opens its own session per task, snapshots it, and
the parent merges the snapshots (counters add, histograms merge
exactly) and adopts the worker spans into its trace — so a
``--metrics`` manifest from a parallel run carries suite-wide totals.
Instrumented objects bind their registry at construction, and pooled
worker processes outlive individual tasks, so telemetry-enabled tasks
first drop the worker's in-process memo caches: otherwise an object
built during an earlier task would keep crediting that task's (already
snapshotted, dead) registry and its counts would vanish.  The disk
cache makes the resulting reload cheap.  Totals can still exceed a
serial run's where independent workers each rebuild shared inputs
(e.g. the aging workloads) that a single process builds once.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterator, List, Optional, Tuple

from repro import cache, obs, storage
from repro.obs import events as obs_events

#: The agings ``experiment all`` depends on, as (accessor, policy) pairs.
_AGING_TASKS: Tuple[Tuple[str, Optional[str]], ...] = (
    ("aged", "ffs"),
    ("aged", "realloc"),
    ("aged_real", None),
)

#: Experiments that share in-process memoized work (fig5 reuses fig4's
#: benchmark sweep; fig6 reuses fig5) and therefore run in one task.
_AFFINITY: Tuple[Tuple[str, ...], ...] = (("fig4", "fig5", "fig6"),)


# ----------------------------------------------------------------------
# Worker-side task functions (module-level: they must pickle)
# ----------------------------------------------------------------------


def _worker_setup(
    cache_enabled: bool, cache_dir: str, backend: str = storage.DEFAULT_BACKEND
) -> None:
    """Pin the worker's cache and storage view to the parent's settings.

    Both are process-wide state, so a pooled worker must re-apply them:
    a ``--backend ssd`` parallel run prices I/O on the same substrate
    (and caches under the same lineage) as its serial twin.
    """
    cache.configure(
        enabled=cache_enabled, directory=cache_dir if cache_enabled else None
    )
    storage.configure(backend)


def _telemetry_payload(registry, tracer) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "metrics": registry.snapshot(), "spans": tracer.to_rows(),
    }
    events = obs.events_or_none()
    if events is not None:
        payload["events"] = events.rows()
        payload["events_dropped"] = events.dropped
    disktrace = obs.disktrace_or_none()
    if disktrace is not None:
        payload["disktrace"] = disktrace.rows()
        payload["disktrace_dropped"] = disktrace.dropped
    return payload


def _warm_aging_task(
    accessor: str,
    policy: Optional[str],
    preset: str,
    cache_enabled: bool,
    cache_dir: str,
    telemetry: bool,
    events: bool,
    disktrace: bool = False,
    backend: str = storage.DEFAULT_BACKEND,
) -> Dict[str, object]:
    """Build (and persist) one aged file system in a worker."""
    from repro.experiments import config

    _worker_setup(cache_enabled, cache_dir, backend)
    start = time.perf_counter()
    if not telemetry:
        _run_accessor(config, accessor, policy, preset)
        return {"wall": time.perf_counter() - start}
    config.clear_caches()  # rebind instrumented objects to this session
    with obs.session(
        events=obs.EventLog() if events else None,
        disktrace=obs.DiskTrace() if disktrace else None,
    ) as (registry, tracer):
        with tracer.span(f"parallel.warm.{policy or 'real'}", preset=preset):
            _run_accessor(config, accessor, policy, preset)
        payload = _telemetry_payload(registry, tracer)
    payload["wall"] = time.perf_counter() - start
    return payload


def _run_accessor(config, accessor: str, policy: Optional[str], preset: str):
    if accessor == "aged":
        return config.aged(preset, policy)
    return config.aged_real(preset)


def _experiment_group_task(
    names: Tuple[str, ...],
    preset: str,
    cache_enabled: bool,
    cache_dir: str,
    telemetry: bool,
    events: bool,
    disktrace: bool = False,
    backend: str = storage.DEFAULT_BACKEND,
) -> Dict[str, object]:
    """Run one affinity group of experiments in a worker, in order."""
    from repro.experiments import config
    from repro.experiments.runner import run_one_timed

    _worker_setup(cache_enabled, cache_dir, backend)

    def _run_group() -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for name in names:
            result, wall = run_one_timed(name, preset)
            out[name] = {"text": result.render(), "wall": wall}  # type: ignore[attr-defined]
        return out

    if not telemetry:
        return {"results": _run_group()}
    config.clear_caches()  # rebind instrumented objects to this session
    with obs.session(
        events=obs.EventLog() if events else None,
        disktrace=obs.DiskTrace() if disktrace else None,
    ) as (registry, tracer):
        results = _run_group()
        payload = _telemetry_payload(registry, tracer)
    payload["results"] = results
    return payload


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------


def _absorb_telemetry(payload: Dict[str, object], origin: str) -> None:
    """Merge one worker task's telemetry into the parent session."""
    registry = obs.metrics_or_none()
    if registry is not None and payload.get("metrics"):
        registry.merge_snapshot(payload["metrics"])  # type: ignore[arg-type]
    tracer = obs.tracer_or_none()
    if tracer is not None and payload.get("spans"):
        tracer.adopt_rows(payload["spans"], origin=origin)  # type: ignore[arg-type]
    events = obs.events_or_none()
    if events is not None and "events" in payload:
        # The merge marker precedes the grafted rows, so a reader of
        # the combined log can attribute what follows to the worker.
        rows = payload["events"]
        events.emit(
            obs_events.WORKER_MERGE, origin=origin,
            events=len(rows),  # type: ignore[arg-type]
            dropped=payload.get("events_dropped", 0),
        )
        events.adopt_rows(rows, origin=origin)  # type: ignore[arg-type]
    disktrace = obs.disktrace_or_none()
    if disktrace is not None and "disktrace" in payload:
        # Trace rows are adopted verbatim (sequence renumbered only, no
        # origin stamp): tasks are absorbed in paper order and the aging
        # replay issues no disk requests, so the merged stream is
        # byte-identical to a serial run's — and pinned by tests.
        disktrace.adopt_rows(payload["disktrace"])  # type: ignore[arg-type]
        disktrace.adopt_dropped(
            payload.get("disktrace_dropped", 0)  # type: ignore[arg-type]
        )


def iter_all_parallel(
    preset: str = "small", jobs: int = 2
) -> Iterator[Tuple[str, str, float]]:
    """Parallel twin of ``runner.iter_all_rendered``.

    Yields ``(name, rendered_text, wall_seconds)`` in paper order; the
    wall time is the worker's compute time for that experiment, not the
    (overlapped) wait in the parent.
    """
    from repro.experiments.runner import EXPERIMENTS, iter_all_rendered

    if jobs <= 1:
        yield from iter_all_rendered(preset, jobs=1)
        return

    cache_enabled = cache.is_enabled()
    cache_dir = str(cache.directory())
    backend = storage.current_backend()
    telemetry = obs.enabled()
    events_on = obs.events_or_none() is not None
    disktrace_on = obs.disktrace_or_none() is not None
    registry = obs.metrics_or_none()
    if registry is not None:
        registry.gauge("parallel.jobs").set(jobs)

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        if cache_enabled:
            # Wave 1: the agings, which everything else reads back from
            # the shared cache.  Without the cache, workers could not
            # share them, so each experiment ages privately instead.
            warm = [
                pool.submit(
                    _warm_aging_task, accessor, policy, preset,
                    cache_enabled, cache_dir, telemetry, events_on,
                    disktrace_on, backend,
                )
                for accessor, policy in _AGING_TASKS
            ]
            for (accessor, policy), future in zip(_AGING_TASKS, warm):
                payload = future.result()
                _absorb_telemetry(payload, origin=f"warm.{policy or 'real'}")
                if registry is not None:
                    registry.counter("parallel.warm_tasks").inc()
        group_of = {
            name: next((g for g in _AFFINITY if name in g), (name,))
            for name in EXPERIMENTS
        }
        futures = {}
        for name in EXPERIMENTS:
            group = group_of[name]
            if group not in futures:
                futures[group] = pool.submit(
                    _experiment_group_task, group, preset,
                    cache_enabled, cache_dir, telemetry, events_on,
                    disktrace_on, backend,
                )
        absorbed = set()
        for name in EXPERIMENTS:
            group = group_of[name]
            payload = futures[group].result()
            if group not in absorbed:
                absorbed.add(group)
                _absorb_telemetry(payload, origin=f"experiment.{group[0]}")
                if registry is not None:
                    registry.counter("parallel.experiment_tasks").inc()
            entry = payload["results"][name]  # type: ignore[index]
            if registry is not None:
                registry.gauge(f"experiment.{name}.wall_s").set(
                    entry["wall"]  # type: ignore[arg-type]
                )
            yield name, entry["text"], entry["wall"]  # type: ignore[misc]


def run_all_parallel(
    preset: str = "small", jobs: int = 2
) -> List[Tuple[str, str, float]]:
    """Materialized form of :func:`iter_all_parallel`."""
    return list(iter_all_parallel(preset, jobs=jobs))
